#include "src/util/file_atomic.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

namespace exo2 {
namespace util {

namespace {

/** Per-process sequence number: several threads writing the same
 *  target concurrently must not collide on the temp name. */
std::atomic<uint64_t> g_tmp_seq{0};

}  // namespace

bool
write_file_atomic(const std::string& path, const std::string& content,
                  bool durable)
{
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                      "." + std::to_string(g_tmp_seq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << content;
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    // Flush file contents to disk before the rename makes it visible.
    int fd = ::open(tmp.c_str(), O_WRONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    if (durable) {
        // Persist the rename: fsync the directory entry.
        size_t slash = path.find_last_of('/');
        std::string dir =
            slash == std::string::npos ? "." : path.substr(0, slash);
        int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
        if (dfd >= 0) {
            ::fsync(dfd);
            ::close(dfd);
        }
    }
    return true;
}

bool
read_file_text(const std::string& path, std::string* out)
{
    out->clear();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    *out = os.str();
    return true;
}

int
sweep_stale_tmp_files(const std::string& dir, double max_age_seconds)
{
    DIR* d = opendir(dir.c_str());
    if (!d)
        return 0;
    int removed = 0;
    std::time_t now = std::time(nullptr);
    while (struct dirent* ent = readdir(d)) {
        std::string name = ent->d_name;
        size_t mark = name.find(".tmp.");
        if (mark == std::string::npos)
            continue;
        // Name shape: <target>.tmp.<pid>.<seq>
        size_t pid_at = mark + 5;
        size_t dot = name.find('.', pid_at);
        char* end = nullptr;
        long pid = std::strtol(name.c_str() + pid_at, &end, 10);
        bool pid_parsed = end && end != name.c_str() + pid_at &&
                          dot != std::string::npos &&
                          end == name.c_str() + dot;
        std::string full = dir + "/" + name;

        bool stale = false;
        if (pid_parsed && pid > 0) {
            // The writer is gone (ESRCH) -> it died mid-write.
            stale = ::kill(static_cast<pid_t>(pid), 0) != 0 &&
                    errno == ESRCH;
        }
        if (!stale) {
            struct stat st;
            if (::stat(full.c_str(), &st) == 0 &&
                now - st.st_mtime > max_age_seconds)
                stale = true;
        }
        if (stale && ::unlink(full.c_str()) == 0)
            removed++;
    }
    closedir(d);
    return removed;
}

}  // namespace util
}  // namespace exo2
