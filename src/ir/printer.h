#ifndef EXO2_IR_PRINTER_H_
#define EXO2_IR_PRINTER_H_

/**
 * @file
 * Pretty printer for the object language, in the paper's Python-like
 * concrete syntax. `parse_proc(print_proc(p))` round-trips.
 */

#include <string>

#include "src/ir/proc.h"

namespace exo2 {

/** Render an expression (with minimal parentheses). */
std::string print_expr(const ExprPtr& e);

/** Render one statement at the given indent level (4 spaces per level). */
std::string print_stmt(const StmtPtr& s, int indent = 0);

/** Render a block of statements. */
std::string print_block(const std::vector<StmtPtr>& block, int indent = 0);

/** Render a whole procedure, starting with `def name(...):`. */
std::string print_proc(const ProcPtr& p);

}  // namespace exo2

#endif  // EXO2_IR_PRINTER_H_
