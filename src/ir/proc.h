#ifndef EXO2_IR_PROC_H_
#define EXO2_IR_PROC_H_

/**
 * @file
 * Procedures of the Exo 2 object language, and the provenance chain
 * that makes cursor forwarding across scheduling steps possible.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/path.h"
#include "src/ir/stmt.h"

namespace exo2 {

class Cursor;

/** A formal argument of a procedure. */
struct ProcArg
{
    std::string name;
    ScalarType type = ScalarType::F32;
    /** Buffer dimensions; empty means scalar. */
    std::vector<ExprPtr> dims;
    MemoryPtr mem;
    /** Size arguments (`N: size`) are Index-typed scalars. */
    bool is_size = false;
    /** Windowed buffer args (`[f32][M, N]`) have unknown strides. */
    bool is_window = false;
};

/**
 * Hardware-instruction metadata. Procs carrying this are *instructions*
 * (Exo `@instr`): their body gives the reference semantics, the template
 * gives the C rendering, and the cost fields feed the machine simulator.
 */
struct InstrInfo
{
    /**
     * C lowering template. Two forms:
     *  - a substitutable C statement snippet containing `{arg}`
     *    placeholders (one per formal argument name), expanded at each
     *    call site by the native-SIMD backend — e.g.
     *    `{dst} = _mm256_add_ps({a}, {b});`;
     *  - a plain identifier (or empty): the name of a helper function
     *    whose body is the instruction's scalar reference semantics.
     * Instructions with a snippet still fall back to the scalar helper
     * (emitted under the proc's own name) whenever native lowering is
     * disabled or a call site cannot satisfy the snippet's operand
     * contract (see DESIGN.md §5).
     */
    std::string c_template;
    /** Issue cost in cycles on the owning machine. */
    double cycles = 1.0;
    /** Behaviour class: "load", "store", "arith", "fma", "config", ... */
    std::string instr_class = "arith";

    /** Whether c_template is a substitutable snippet (vs a name). */
    bool has_native_template() const
    {
        return c_template.find('{') != std::string::npos;
    }
};

/** Records how a proc was derived from its parent (time coordinate). */
struct Provenance
{
    ProcPtr parent;
    ForwardFn fwd;
    std::string action;
};

/**
 * An immutable procedure.
 *
 * Scheduling primitives return a new Proc whose provenance points at the
 * input Proc together with a forwarding function; `Proc::forward` walks
 * and composes this chain (Section 5.2, "Forwarding").
 */
class Proc : public std::enable_shared_from_this<Proc>
{
  public:
    const std::string& name() const { return name_; }
    const std::vector<ProcArg>& args() const { return args_; }
    const std::vector<ExprPtr>& preds() const { return preds_; }
    const std::vector<StmtPtr>& body_stmts() const { return body_; }
    const std::optional<InstrInfo>& instr() const { return instr_; }

    /** Unique version id (the cursor time coordinate). */
    uint64_t uid() const { return uid_; }

    /** Uid of the original proc this one was scheduled from. */
    uint64_t root_uid() const { return root_uid_; }

    /**
     * Monotone generation stamp: 0 for a freshly made proc, parent's
     * generation + 1 for every derived version. Strictly increasing
     * along any provenance chain, so `a.generation() < b.generation()`
     * is necessary for `a` to be an ancestor of `b` — forwarding uses
     * it to stop chain walks early instead of running to the root.
     */
    uint64_t generation() const { return gen_; }

    const std::shared_ptr<const Provenance>& provenance() const
    {
        return provenance_;
    }

    /** Find the argument named `name`; nullptr if absent. */
    const ProcArg* find_arg(const std::string& name) const;

    bool is_instr() const { return instr_.has_value(); }

    // -- Factories / rebuilders ------------------------------------------

    static ProcPtr make(std::string name, std::vector<ProcArg> args,
                        std::vector<ExprPtr> preds,
                        std::vector<StmtPtr> body,
                        std::optional<InstrInfo> instr = std::nullopt);

    /**
     * Derive a new version with a new body; `fwd` forwards cursor
     * locations from this proc to the result, `action` names the
     * primitive for diagnostics.
     */
    ProcPtr with_body(std::vector<StmtPtr> body, ForwardFn fwd,
                      std::string action) const;

    /** Derived version that also changes args / preds. */
    ProcPtr with_signature(std::vector<ProcArg> args,
                           std::vector<ExprPtr> preds,
                           std::vector<StmtPtr> body, ForwardFn fwd,
                           std::string action) const;

    /** Same code under a new name (Exo `rename`); keeps equivalence. */
    ProcPtr renamed(std::string new_name) const;

    /** Add an assertion (Exo `add_assertion`); keeps equivalence. */
    ProcPtr with_assertion(ExprPtr pred) const;

    // -- Cursor conveniences (implemented in cursor/cursor.cc) -----------

    /** Cursor to the whole body block. */
    Cursor body() const;

    /** Find the For loop with iterator `name` ("i" or "i #2" for the
     *  third match). Throws SchedulingError if absent. */
    Cursor find_loop(const std::string& name) const;

    /** Find by pattern, e.g. "for i in _: _", "y[_] = _"; see
     *  cursor/pattern.h for the pattern language. */
    Cursor find(const std::string& pattern) const;

    /** All matches of a pattern (possibly none). */
    std::vector<Cursor> find_all(const std::string& pattern) const;

    /** Find the Alloc statement declaring `name`. */
    Cursor find_alloc(const std::string& name) const;

    /**
     * Forward a cursor made on an ancestor version of this proc to this
     * version (Section 5.2). Throws InvalidCursorError if the cursor's
     * proc is not an ancestor or forwarding invalidated the cursor.
     */
    Cursor forward(const Cursor& c) const;

  private:
    Proc() = default;

    static uint64_t next_uid();

    std::string name_;
    std::vector<ProcArg> args_;
    std::vector<ExprPtr> preds_;
    std::vector<StmtPtr> body_;
    std::optional<InstrInfo> instr_;
    uint64_t uid_ = 0;
    uint64_t root_uid_ = 0;
    uint64_t gen_ = 0;
    std::shared_ptr<const Provenance> provenance_;

    /** Lazily-computed `proc_digest` cache (the proc is immutable once
     *  published, so the digest never changes after first computation).
     *  Call-statement hashing folds in the callee's digest, so this is
     *  read on hot scheduling paths. Copies start cold, like
     *  SubtreeMemoSlot: the `with_*` rebuilders copy the node and then
     *  change digest-relevant fields. */
    struct DigestCache
    {
        uint64_t v = 0;
        bool valid = false;
        DigestCache() = default;
        DigestCache(const DigestCache&) {}
        DigestCache& operator=(const DigestCache&) { return *this; }
    };
    mutable DigestCache digest_;

    friend uint64_t proc_digest(const ProcPtr& p);
};

/** True if two procs are derived from the same original procedure. */
bool procs_equivalent(const ProcPtr& a, const ProcPtr& b);

/**
 * 64-bit structural digest of a procedure: signature (argument names,
 * types, dims, memories), assertions, instruction metadata, and body.
 * Built from the interned nodes' cached hashes, so it is O(signature +
 * top-level statements), not O(tree). Structurally identical procs give
 * equal digests regardless of how they were derived — the autotuner's
 * beam search uses this to deduplicate schedule states, and the cost
 * simulator's memo keys on it. The proc *name* is excluded (`renamed`
 * preserves semantics and cost).
 */
uint64_t proc_digest(const ProcPtr& p);

}  // namespace exo2

#endif  // EXO2_IR_PROC_H_
