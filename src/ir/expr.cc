#include "src/ir/expr.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "src/ir/errors.h"
#include "src/ir/interner.h"

namespace exo2 {

namespace {

/** Bit pattern of a literal, with -0.0 canonicalized to +0.0 so the
 *  interner does not split nodes that compare equal under `==`. */
uint64_t
const_bits(double v)
{
    if (v == 0.0)
        v = 0.0;
    uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/** Structural hash over a node whose children are already interned
 *  (children contribute their cached hashes, not a recursive walk). */
uint64_t
compute_expr_hash(const Expr& e)
{
    uint64_t h = hash_combine(0xE4012ull, (static_cast<uint64_t>(e.kind())
                                           << 8) |
                                              static_cast<uint64_t>(e.type()));
    switch (e.kind()) {
      case ExprKind::Const:
        return hash_combine(h, const_bits(e.const_value()));
      case ExprKind::Read:
      case ExprKind::Extern:
        h = hash_combine(h, hash_str(e.name()));
        h = hash_combine(h, e.idx().size());
        for (const auto& i : e.idx())
            h = hash_combine(h, i->structural_hash());
        return h;
      case ExprKind::BinOp:
        h = hash_combine(h, static_cast<uint64_t>(e.op()));
        h = hash_combine(h, e.lhs()->structural_hash());
        return hash_combine(h, e.rhs()->structural_hash());
      case ExprKind::USub:
        return hash_combine(h, e.lhs()->structural_hash());
      case ExprKind::Window:
        h = hash_combine(h, hash_str(e.name()));
        for (const auto& d : e.window_dims()) {
            h = hash_combine(h, d.lo->structural_hash());
            h = hash_combine(h, d.hi ? d.hi->structural_hash() : 0x504Full);
        }
        return h;
      case ExprKind::Stride:
        h = hash_combine(h, hash_str(e.name()));
        return hash_combine(h, static_cast<uint64_t>(e.stride_dim()));
      case ExprKind::ReadConfig:
        h = hash_combine(h, hash_str(e.name()));
        return hash_combine(h, hash_str(e.field()));
    }
    throw InternalError("unknown expr kind in hash");
}

/** Structural equality assuming both nodes' children are interned, so
 *  children compare by pointer. */
bool
shallow_expr_equal(const Expr& a, const Expr& b)
{
    if (a.kind() != b.kind() || a.type() != b.type())
        return false;
    switch (a.kind()) {
      case ExprKind::Const:
        return const_bits(a.const_value()) == const_bits(b.const_value());
      case ExprKind::Read:
      case ExprKind::Extern:
        return a.name() == b.name() && a.idx() == b.idx();
      case ExprKind::BinOp:
        return a.op() == b.op() && a.lhs() == b.lhs() && a.rhs() == b.rhs();
      case ExprKind::USub:
        return a.lhs() == b.lhs();
      case ExprKind::Window: {
        if (a.name() != b.name() ||
            a.window_dims().size() != b.window_dims().size()) {
            return false;
        }
        for (size_t i = 0; i < a.window_dims().size(); i++) {
            const auto& da = a.window_dims()[i];
            const auto& db = b.window_dims()[i];
            if (da.lo != db.lo || da.hi != db.hi)
                return false;
        }
        return true;
      }
      case ExprKind::Stride:
        return a.name() == b.name() && a.stride_dim() == b.stride_dim();
      case ExprKind::ReadConfig:
        return a.name() == b.name() && a.field() == b.field();
    }
    return false;
}

/**
 * The interner table. Interned nodes are retained for the lifetime of
 * the process (the table is deliberately leaked so it outlives every
 * static destructor that might still hold an ExprPtr): this is what
 * makes raw `const Expr*` keys sound in the analysis memo caches.
 */
struct InternTable
{
    std::mutex mu;
    std::unordered_multimap<uint64_t, ExprPtr> map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t next_id = 1;
};

InternTable&
intern_table()
{
    static InternTable* t = new InternTable();
    return *t;
}

}  // namespace

ExprPtr
Expr::intern(Expr&& tmp)
{
    tmp.hash_ = compute_expr_hash(tmp);
    InternTable& t = intern_table();
    std::lock_guard<std::mutex> lock(t.mu);
    auto range = t.map.equal_range(tmp.hash_);
    for (auto it = range.first; it != range.second; ++it) {
        if (shallow_expr_equal(*it->second, tmp)) {
            t.hits++;
            return it->second;
        }
    }
    tmp.id_ = t.next_id++;
    ExprPtr p(new Expr(std::move(tmp)));
    t.map.emplace(p->structural_hash(), p);
    t.misses++;
    return p;
}

InternerStats
expr_interner_stats()
{
    InternTable& t = intern_table();
    std::lock_guard<std::mutex> lock(t.mu);
    InternerStats s;
    s.live_nodes = t.map.size();
    s.hits = t.hits;
    s.misses = t.misses;
    return s;
}

void
reset_expr_interner_stats()
{
    InternTable& t = intern_table();
    std::lock_guard<std::mutex> lock(t.mu);
    t.hits = 0;
    t.misses = 0;
}

bool
is_predicate_op(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Lt: case BinOpKind::Le: case BinOpKind::Gt:
      case BinOpKind::Ge: case BinOpKind::Eq: case BinOpKind::Ne:
      case BinOpKind::And: case BinOpKind::Or:
        return true;
      default:
        return false;
    }
}

std::string
binop_name(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Add: return "+";
      case BinOpKind::Sub: return "-";
      case BinOpKind::Mul: return "*";
      case BinOpKind::Div: return "/";
      case BinOpKind::Mod: return "%";
      case BinOpKind::Lt: return "<";
      case BinOpKind::Le: return "<=";
      case BinOpKind::Gt: return ">";
      case BinOpKind::Ge: return ">=";
      case BinOpKind::Eq: return "==";
      case BinOpKind::Ne: return "!=";
      case BinOpKind::And: return "and";
      case BinOpKind::Or: return "or";
    }
    throw InternalError("unknown binop");
}

ExprPtr
Expr::make_const(double v, ScalarType t)
{
    Expr e;
    e.kind_ = ExprKind::Const;
    e.type_ = t;
    e.const_value_ = v;
    return intern(std::move(e));
}

ExprPtr
Expr::make_read(std::string name, std::vector<ExprPtr> idx, ScalarType t)
{
    Expr e;
    e.kind_ = ExprKind::Read;
    e.type_ = t;
    e.name_ = std::move(name);
    e.idx_ = std::move(idx);
    return intern(std::move(e));
}

ExprPtr
Expr::make_binop(BinOpKind op, ExprPtr lhs, ExprPtr rhs)
{
    if (!lhs || !rhs)
        throw InternalError("make_binop: null operand");
    Expr e;
    e.kind_ = ExprKind::BinOp;
    e.type_ = is_predicate_op(op) ? ScalarType::Bool : lhs->type();
    e.op_ = op;
    e.lhs_ = std::move(lhs);
    e.rhs_ = std::move(rhs);
    return intern(std::move(e));
}

ExprPtr
Expr::make_usub(ExprPtr sub)
{
    Expr e;
    e.kind_ = ExprKind::USub;
    e.type_ = sub->type();
    e.lhs_ = std::move(sub);
    return intern(std::move(e));
}

ExprPtr
Expr::make_window(std::string name, std::vector<WindowDim> dims, ScalarType t)
{
    Expr e;
    e.kind_ = ExprKind::Window;
    e.type_ = t;
    e.name_ = std::move(name);
    e.wdims_ = std::move(dims);
    return intern(std::move(e));
}

ExprPtr
Expr::make_stride(std::string name, int dim)
{
    Expr e;
    e.kind_ = ExprKind::Stride;
    e.type_ = ScalarType::Index;
    e.name_ = std::move(name);
    e.stride_dim_ = dim;
    return intern(std::move(e));
}

ExprPtr
Expr::make_read_config(std::string cfg, std::string field, ScalarType t)
{
    Expr e;
    e.kind_ = ExprKind::ReadConfig;
    e.type_ = t;
    e.name_ = std::move(cfg);
    e.field_ = std::move(field);
    return intern(std::move(e));
}

ExprPtr
Expr::make_extern(std::string fn, std::vector<ExprPtr> args, ScalarType t)
{
    Expr e;
    e.kind_ = ExprKind::Extern;
    e.type_ = t;
    e.name_ = std::move(fn);
    e.idx_ = std::move(args);
    return intern(std::move(e));
}

std::vector<ExprPtr>
Expr::children() const
{
    switch (kind_) {
      case ExprKind::Const:
      case ExprKind::Stride:
      case ExprKind::ReadConfig:
        return {};
      case ExprKind::Read:
      case ExprKind::Extern:
        return idx_;
      case ExprKind::BinOp:
        return {lhs_, rhs_};
      case ExprKind::USub:
        return {lhs_};
      case ExprKind::Window: {
        std::vector<ExprPtr> out;
        for (const auto& d : wdims_) {
            out.push_back(d.lo);
            if (d.hi)
                out.push_back(d.hi);
        }
        return out;
      }
    }
    throw InternalError("unknown expr kind");
}

ExprPtr
Expr::with_children(std::vector<ExprPtr> children) const
{
    switch (kind_) {
      case ExprKind::Const:
      case ExprKind::Stride:
      case ExprKind::ReadConfig:
        if (!children.empty())
            throw InternalError("with_children: leaf expr");
        // Leaves re-intern to the same node: a no-op rebuild is free.
        return intern(Expr(*this));
      case ExprKind::Read:
        return make_read(name_, std::move(children), type_);
      case ExprKind::Extern:
        return make_extern(name_, std::move(children), type_);
      case ExprKind::BinOp:
        if (children.size() != 2)
            throw InternalError("with_children: binop arity");
        return make_binop(op_, children[0], children[1]);
      case ExprKind::USub:
        if (children.size() != 1)
            throw InternalError("with_children: usub arity");
        return make_usub(children[0]);
      case ExprKind::Window: {
        std::vector<WindowDim> dims;
        size_t i = 0;
        for (const auto& d : wdims_) {
            WindowDim nd;
            nd.lo = children.at(i++);
            if (d.hi)
                nd.hi = children.at(i++);
            dims.push_back(nd);
        }
        if (i != children.size())
            throw InternalError("with_children: window arity");
        return make_window(name_, std::move(dims), type_);
      }
    }
    throw InternalError("unknown expr kind");
}

bool
expr_equal(const ExprPtr& a, const ExprPtr& b)
{
    // Hash-consing makes structural equality pointer identity; the deep
    // walk below survives only as a safety net for hash collisions.
    if (a == b)
        return true;
    if (!a || !b)
        return false;
    if (a->structural_hash() != b->structural_hash())
        return false;
    if (a->kind() != b->kind() || a->type() != b->type())
        return false;
    switch (a->kind()) {
      case ExprKind::Const:
        return a->const_value() == b->const_value();
      case ExprKind::Read:
      case ExprKind::Extern: {
        if (a->name() != b->name() || a->idx().size() != b->idx().size())
            return false;
        for (size_t i = 0; i < a->idx().size(); i++) {
            if (!expr_equal(a->idx()[i], b->idx()[i]))
                return false;
        }
        return true;
      }
      case ExprKind::BinOp:
        return a->op() == b->op() && expr_equal(a->lhs(), b->lhs()) &&
               expr_equal(a->rhs(), b->rhs());
      case ExprKind::USub:
        return expr_equal(a->lhs(), b->lhs());
      case ExprKind::Window: {
        if (a->name() != b->name() ||
            a->window_dims().size() != b->window_dims().size()) {
            return false;
        }
        for (size_t i = 0; i < a->window_dims().size(); i++) {
            const auto& da = a->window_dims()[i];
            const auto& db = b->window_dims()[i];
            if (da.is_point() != db.is_point())
                return false;
            if (!expr_equal(da.lo, db.lo))
                return false;
            if (da.hi && !expr_equal(da.hi, db.hi))
                return false;
        }
        return true;
      }
      case ExprKind::Stride:
        return a->name() == b->name() && a->stride_dim() == b->stride_dim();
      case ExprKind::ReadConfig:
        return a->name() == b->name() && a->field() == b->field();
    }
    throw InternalError("unknown expr kind");
}

ExprPtr
expr_subst(const ExprPtr& e, const std::string& name, const ExprPtr& repl)
{
    if (!e)
        return e;
    if (e->kind() == ExprKind::Read && e->name() == name &&
        e->idx().empty()) {
        return repl;
    }
    auto kids = e->children();
    bool changed = false;
    for (auto& k : kids) {
        auto nk = expr_subst(k, name, repl);
        if (nk != k) {
            changed = true;
            k = nk;
        }
    }
    if (!changed)
        return e;
    return e->with_children(std::move(kids));
}

void
expr_collect_reads(const ExprPtr& e, std::vector<std::string>* out)
{
    if (!e)
        return;
    if (e->kind() == ExprKind::Read || e->kind() == ExprKind::Window ||
        e->kind() == ExprKind::Stride) {
        if (std::find(out->begin(), out->end(), e->name()) == out->end())
            out->push_back(e->name());
    }
    for (const auto& k : e->children())
        expr_collect_reads(k, out);
}

bool
expr_uses(const ExprPtr& e, const std::string& name)
{
    if (!e)
        return false;
    if ((e->kind() == ExprKind::Read || e->kind() == ExprKind::Window ||
         e->kind() == ExprKind::Stride) &&
        e->name() == name) {
        return true;
    }
    for (const auto& k : e->children()) {
        if (expr_uses(k, name))
            return true;
    }
    return false;
}

}  // namespace exo2
