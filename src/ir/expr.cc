#include "src/ir/expr.h"

#include <algorithm>

#include "src/ir/errors.h"

namespace exo2 {

bool
is_predicate_op(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Lt: case BinOpKind::Le: case BinOpKind::Gt:
      case BinOpKind::Ge: case BinOpKind::Eq: case BinOpKind::Ne:
      case BinOpKind::And: case BinOpKind::Or:
        return true;
      default:
        return false;
    }
}

std::string
binop_name(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Add: return "+";
      case BinOpKind::Sub: return "-";
      case BinOpKind::Mul: return "*";
      case BinOpKind::Div: return "/";
      case BinOpKind::Mod: return "%";
      case BinOpKind::Lt: return "<";
      case BinOpKind::Le: return "<=";
      case BinOpKind::Gt: return ">";
      case BinOpKind::Ge: return ">=";
      case BinOpKind::Eq: return "==";
      case BinOpKind::Ne: return "!=";
      case BinOpKind::And: return "and";
      case BinOpKind::Or: return "or";
    }
    throw InternalError("unknown binop");
}

ExprPtr
Expr::make_const(double v, ScalarType t)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = ExprKind::Const;
    e->type_ = t;
    e->const_value_ = v;
    return e;
}

ExprPtr
Expr::make_read(std::string name, std::vector<ExprPtr> idx, ScalarType t)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = ExprKind::Read;
    e->type_ = t;
    e->name_ = std::move(name);
    e->idx_ = std::move(idx);
    return e;
}

ExprPtr
Expr::make_binop(BinOpKind op, ExprPtr lhs, ExprPtr rhs)
{
    if (!lhs || !rhs)
        throw InternalError("make_binop: null operand");
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = ExprKind::BinOp;
    e->type_ = is_predicate_op(op) ? ScalarType::Bool : lhs->type();
    e->op_ = op;
    e->lhs_ = std::move(lhs);
    e->rhs_ = std::move(rhs);
    return e;
}

ExprPtr
Expr::make_usub(ExprPtr sub)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = ExprKind::USub;
    e->type_ = sub->type();
    e->lhs_ = std::move(sub);
    return e;
}

ExprPtr
Expr::make_window(std::string name, std::vector<WindowDim> dims, ScalarType t)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = ExprKind::Window;
    e->type_ = t;
    e->name_ = std::move(name);
    e->wdims_ = std::move(dims);
    return e;
}

ExprPtr
Expr::make_stride(std::string name, int dim)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = ExprKind::Stride;
    e->type_ = ScalarType::Index;
    e->name_ = std::move(name);
    e->stride_dim_ = dim;
    return e;
}

ExprPtr
Expr::make_read_config(std::string cfg, std::string field, ScalarType t)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = ExprKind::ReadConfig;
    e->type_ = t;
    e->name_ = std::move(cfg);
    e->field_ = std::move(field);
    return e;
}

ExprPtr
Expr::make_extern(std::string fn, std::vector<ExprPtr> args, ScalarType t)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = ExprKind::Extern;
    e->type_ = t;
    e->name_ = std::move(fn);
    e->idx_ = std::move(args);
    return e;
}

std::vector<ExprPtr>
Expr::children() const
{
    switch (kind_) {
      case ExprKind::Const:
      case ExprKind::Stride:
      case ExprKind::ReadConfig:
        return {};
      case ExprKind::Read:
      case ExprKind::Extern:
        return idx_;
      case ExprKind::BinOp:
        return {lhs_, rhs_};
      case ExprKind::USub:
        return {lhs_};
      case ExprKind::Window: {
        std::vector<ExprPtr> out;
        for (const auto& d : wdims_) {
            out.push_back(d.lo);
            if (d.hi)
                out.push_back(d.hi);
        }
        return out;
      }
    }
    throw InternalError("unknown expr kind");
}

ExprPtr
Expr::with_children(std::vector<ExprPtr> children) const
{
    switch (kind_) {
      case ExprKind::Const:
      case ExprKind::Stride:
      case ExprKind::ReadConfig:
        if (!children.empty())
            throw InternalError("with_children: leaf expr");
        return std::shared_ptr<Expr>(new Expr(*this));
      case ExprKind::Read:
        return make_read(name_, std::move(children), type_);
      case ExprKind::Extern:
        return make_extern(name_, std::move(children), type_);
      case ExprKind::BinOp:
        if (children.size() != 2)
            throw InternalError("with_children: binop arity");
        return make_binop(op_, children[0], children[1]);
      case ExprKind::USub:
        if (children.size() != 1)
            throw InternalError("with_children: usub arity");
        return make_usub(children[0]);
      case ExprKind::Window: {
        std::vector<WindowDim> dims;
        size_t i = 0;
        for (const auto& d : wdims_) {
            WindowDim nd;
            nd.lo = children.at(i++);
            if (d.hi)
                nd.hi = children.at(i++);
            dims.push_back(nd);
        }
        if (i != children.size())
            throw InternalError("with_children: window arity");
        return make_window(name_, std::move(dims), type_);
      }
    }
    throw InternalError("unknown expr kind");
}

bool
expr_equal(const ExprPtr& a, const ExprPtr& b)
{
    if (a == b)
        return true;
    if (!a || !b)
        return false;
    if (a->kind() != b->kind() || a->type() != b->type())
        return false;
    switch (a->kind()) {
      case ExprKind::Const:
        return a->const_value() == b->const_value();
      case ExprKind::Read:
      case ExprKind::Extern: {
        if (a->name() != b->name() || a->idx().size() != b->idx().size())
            return false;
        for (size_t i = 0; i < a->idx().size(); i++) {
            if (!expr_equal(a->idx()[i], b->idx()[i]))
                return false;
        }
        return true;
      }
      case ExprKind::BinOp:
        return a->op() == b->op() && expr_equal(a->lhs(), b->lhs()) &&
               expr_equal(a->rhs(), b->rhs());
      case ExprKind::USub:
        return expr_equal(a->lhs(), b->lhs());
      case ExprKind::Window: {
        if (a->name() != b->name() ||
            a->window_dims().size() != b->window_dims().size()) {
            return false;
        }
        for (size_t i = 0; i < a->window_dims().size(); i++) {
            const auto& da = a->window_dims()[i];
            const auto& db = b->window_dims()[i];
            if (da.is_point() != db.is_point())
                return false;
            if (!expr_equal(da.lo, db.lo))
                return false;
            if (da.hi && !expr_equal(da.hi, db.hi))
                return false;
        }
        return true;
      }
      case ExprKind::Stride:
        return a->name() == b->name() && a->stride_dim() == b->stride_dim();
      case ExprKind::ReadConfig:
        return a->name() == b->name() && a->field() == b->field();
    }
    throw InternalError("unknown expr kind");
}

ExprPtr
expr_subst(const ExprPtr& e, const std::string& name, const ExprPtr& repl)
{
    if (!e)
        return e;
    if (e->kind() == ExprKind::Read && e->name() == name &&
        e->idx().empty()) {
        return repl;
    }
    auto kids = e->children();
    bool changed = false;
    for (auto& k : kids) {
        auto nk = expr_subst(k, name, repl);
        if (nk != k) {
            changed = true;
            k = nk;
        }
    }
    if (!changed)
        return e;
    return e->with_children(std::move(kids));
}

void
expr_collect_reads(const ExprPtr& e, std::vector<std::string>* out)
{
    if (!e)
        return;
    if (e->kind() == ExprKind::Read || e->kind() == ExprKind::Window ||
        e->kind() == ExprKind::Stride) {
        if (std::find(out->begin(), out->end(), e->name()) == out->end())
            out->push_back(e->name());
    }
    for (const auto& k : e->children())
        expr_collect_reads(k, out);
}

bool
expr_uses(const ExprPtr& e, const std::string& name)
{
    if (!e)
        return false;
    if ((e->kind() == ExprKind::Read || e->kind() == ExprKind::Window ||
         e->kind() == ExprKind::Stride) &&
        e->name() == name) {
        return true;
    }
    for (const auto& k : e->children()) {
        if (expr_uses(k, name))
            return true;
    }
    return false;
}

}  // namespace exo2
