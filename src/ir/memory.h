#ifndef EXO2_IR_MEMORY_H_
#define EXO2_IR_MEMORY_H_

/**
 * @file
 * Memory spaces (`@DRAM`, `@AVX512`, `@GEMM_SCRATCH`, ...).
 *
 * Exo externalizes hardware memories to user code; here memory spaces
 * are registered objects that buffers and arguments are annotated with.
 * Backend checks (Appendix A.7) validate that accesses obey each
 * memory's constraints.
 */

#include <cstdint>
#include <memory>
#include <string>

namespace exo2 {

/** Broad behavioural class of a memory space. */
enum class MemoryKind : uint8_t {
    Dram,        ///< Plain addressable memory (DRAM, DRAM_STATIC, ...).
    Vector,      ///< SIMD register file; innermost dim must fit one vector.
    Scratchpad,  ///< Accelerator-managed scratchpad (Gemmini).
    Accumulator, ///< Accelerator accumulator (Gemmini).
};

/**
 * A named memory space.
 *
 * Vector memories carry the register width in bytes so the backend check
 * can verify that the innermost dimension of any buffer placed there fits
 * exactly one vector register of the element type.
 */
class Memory
{
  public:
    Memory(std::string name, MemoryKind kind, int vector_bytes = 0,
           int64_t capacity_bytes = 0)
        : name_(std::move(name)), kind_(kind), vector_bytes_(vector_bytes),
          capacity_bytes_(capacity_bytes) {}

    const std::string& name() const { return name_; }
    MemoryKind kind() const { return kind_; }

    /** Vector register width in bytes; 0 for non-vector memories. */
    int vector_bytes() const { return vector_bytes_; }

    /** Capacity in bytes; 0 means unbounded. */
    int64_t capacity_bytes() const { return capacity_bytes_; }

    bool is_vector() const { return kind_ == MemoryKind::Vector; }

  private:
    std::string name_;
    MemoryKind kind_;
    int vector_bytes_;
    int64_t capacity_bytes_;
};

using MemoryPtr = std::shared_ptr<const Memory>;

/** Default memory: plain DRAM. */
MemoryPtr mem_dram();
/** Function-static DRAM (GEMM panel caches). */
MemoryPtr mem_dram_static();
/** Stack-allocated DRAM (Halide store_in target). */
MemoryPtr mem_dram_stack();
/** AVX2 vector register file (32-byte registers). */
MemoryPtr mem_avx2();
/** AVX512 vector register file (64-byte registers). */
MemoryPtr mem_avx512();
/** Gemmini 256 KiB scratchpad. */
MemoryPtr mem_gemm_scratch();
/** Gemmini 16 KiB accumulator. */
MemoryPtr mem_gemm_accum();

/** Look up one of the built-in memories by name; throws InternalError. */
MemoryPtr memory_from_name(const std::string& name);

}  // namespace exo2

#endif  // EXO2_IR_MEMORY_H_
