#ifndef EXO2_IR_TYPE_H_
#define EXO2_IR_TYPE_H_

/**
 * @file
 * Scalar types of the Exo 2 object language.
 */

#include <cstdint>
#include <string>

namespace exo2 {

/**
 * Scalar element types supported by the object language.
 *
 * `Index` is the type of size arguments, loop iterators, and index
 * expressions; `Bool` is the type of predicates (loop guards, asserts).
 */
enum class ScalarType : uint8_t {
    F32,
    F64,
    I8,
    I32,
    Bool,
    Index,
};

/** True for the numeric buffer element types (f32/f64/i8/i32). */
bool is_numeric(ScalarType t);

/** True for the floating-point element types. */
bool is_float(ScalarType t);

/** True for the integer element types (i8/i32), excluding Index. */
bool is_integer(ScalarType t);

/** Size of one element in bytes as laid out by codegen / the simulator. */
int type_size_bytes(ScalarType t);

/** Object-language spelling, e.g. "f32". */
std::string type_name(ScalarType t);

/** C spelling used by codegen, e.g. "float". */
std::string type_c_name(ScalarType t);

/** Parse an object-language spelling; throws InternalError on failure. */
ScalarType type_from_name(const std::string& name);

}  // namespace exo2

#endif  // EXO2_IR_TYPE_H_
