#ifndef EXO2_IR_INTERNER_H_
#define EXO2_IR_INTERNER_H_

/**
 * @file
 * Hash-consing support for the IR.
 *
 * Every `Expr` is interned at construction: the factory functions in
 * expr.cc consult a process-global table keyed by a 64-bit structural
 * hash and return the existing node when a structurally identical one
 * was built before. Two consequences the rest of the system leans on:
 *
 *  1. Structural equality of expressions is pointer equality
 *     (`expr_equal(a, b)` iff `a == b` for interned nodes), which makes
 *     equality, substitution no-op detection, and pattern matching
 *     cheap along the spine-rebuilding edits of `cursor/edits.cc`.
 *  2. Interned nodes are retained for the lifetime of the process, so
 *     a raw `const Expr*` (or its dense `intern_id()`) is a stable key
 *     for the analysis memo caches — no ABA hazard, no pinning needed.
 *
 * `Stmt` nodes are NOT interned (their identity participates in cursor
 * semantics and they embed `ProcPtr` callees), but they carry the same
 * cached 64-bit structural hash for fast inequality rejection and for
 * keying per-subtree analysis caches.
 *
 * This file holds the hash primitives shared by expr.cc / stmt.cc and
 * the introspection API for tests; the table itself lives in expr.cc
 * because it needs access to Expr's private constructor.
 */

#include <cstdint>
#include <string>

namespace exo2 {

/** splitmix64 finalizer: cheap, well-distributed 64-bit mixer. */
inline uint64_t
hash_mix(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Order-dependent combine of a new value into a running hash. */
inline uint64_t
hash_combine(uint64_t seed, uint64_t v)
{
    return hash_mix(seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) +
                            (seed >> 2)));
}

/** FNV-1a over the bytes of a string. */
inline uint64_t
hash_str(const std::string& s)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** Interner introspection (implemented in expr.cc). */
struct InternerStats
{
    uint64_t live_nodes = 0;  ///< distinct interned expressions
    uint64_t hits = 0;        ///< factory calls answered by the table
    uint64_t misses = 0;      ///< factory calls that inserted a node
};

InternerStats expr_interner_stats();

/** Reset the hit/miss counters (the table itself is never cleared). */
void reset_expr_interner_stats();

}  // namespace exo2

#endif  // EXO2_IR_INTERNER_H_
