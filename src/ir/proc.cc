#include "src/ir/proc.h"

#include <atomic>
#include <cstring>

#include "src/ir/errors.h"
#include "src/ir/interner.h"

namespace exo2 {

uint64_t
Proc::next_uid()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1);
}

const ProcArg*
Proc::find_arg(const std::string& name) const
{
    for (const auto& a : args_) {
        if (a.name == name)
            return &a;
    }
    return nullptr;
}

ProcPtr
Proc::make(std::string name, std::vector<ProcArg> args,
           std::vector<ExprPtr> preds, std::vector<StmtPtr> body,
           std::optional<InstrInfo> instr)
{
    auto p = std::shared_ptr<Proc>(new Proc());
    p->name_ = std::move(name);
    p->args_ = std::move(args);
    p->preds_ = std::move(preds);
    p->body_ = std::move(body);
    p->instr_ = std::move(instr);
    p->uid_ = next_uid();
    p->root_uid_ = p->uid_;
    return p;
}

ProcPtr
Proc::with_body(std::vector<StmtPtr> body, ForwardFn fwd,
                std::string action) const
{
    auto p = std::shared_ptr<Proc>(new Proc(*this));
    p->body_ = std::move(body);
    p->uid_ = next_uid();
    p->gen_ = gen_ + 1;
    auto prov = std::make_shared<Provenance>();
    prov->parent = shared_from_this();
    prov->fwd = std::move(fwd);
    prov->action = std::move(action);
    p->provenance_ = std::move(prov);
    return p;
}

ProcPtr
Proc::with_signature(std::vector<ProcArg> args, std::vector<ExprPtr> preds,
                     std::vector<StmtPtr> body, ForwardFn fwd,
                     std::string action) const
{
    auto p = std::shared_ptr<Proc>(new Proc(*this));
    p->args_ = std::move(args);
    p->preds_ = std::move(preds);
    p->body_ = std::move(body);
    p->uid_ = next_uid();
    p->gen_ = gen_ + 1;
    auto prov = std::make_shared<Provenance>();
    prov->parent = shared_from_this();
    prov->fwd = std::move(fwd);
    prov->action = std::move(action);
    p->provenance_ = std::move(prov);
    return p;
}

ProcPtr
Proc::renamed(std::string new_name) const
{
    auto identity = [](const CursorLoc& l) {
        return std::optional<CursorLoc>(l);
    };
    auto p = std::shared_ptr<Proc>(new Proc(*this));
    p->name_ = std::move(new_name);
    p->uid_ = next_uid();
    p->gen_ = gen_ + 1;
    auto prov = std::make_shared<Provenance>();
    prov->parent = shared_from_this();
    prov->fwd = identity;
    prov->action = "rename";
    p->provenance_ = std::move(prov);
    return p;
}

ProcPtr
Proc::with_assertion(ExprPtr pred) const
{
    auto identity = [](const CursorLoc& l) {
        return std::optional<CursorLoc>(l);
    };
    auto p = std::shared_ptr<Proc>(new Proc(*this));
    p->preds_.push_back(std::move(pred));
    p->uid_ = next_uid();
    p->gen_ = gen_ + 1;
    auto prov = std::make_shared<Provenance>();
    prov->parent = shared_from_this();
    prov->fwd = identity;
    prov->action = "add_assertion";
    p->provenance_ = std::move(prov);
    return p;
}

bool
procs_equivalent(const ProcPtr& a, const ProcPtr& b)
{
    return a && b && a->root_uid() == b->root_uid();
}

uint64_t
proc_digest(const ProcPtr& p)
{
    if (!p)
        return 0;
    if (p->digest_.valid)
        return p->digest_.v;
    uint64_t h = 0x45584F32u;  // "EXO2"
    for (const auto& a : p->args()) {
        h = hash_combine(h, hash_str(a.name));
        h = hash_combine(h, static_cast<uint64_t>(a.type));
        h = hash_combine(h, a.is_size ? 1u : 0u);
        h = hash_combine(h, a.is_window ? 1u : 0u);
        h = hash_combine(h, a.mem ? hash_str(a.mem->name()) : 0u);
        for (const auto& d : a.dims)
            h = hash_combine(h, d ? d->structural_hash() : 0u);
        h = hash_mix(h);
    }
    for (const auto& pr : p->preds())
        h = hash_combine(h, pr ? pr->structural_hash() : 0u);
    if (p->instr()) {
        h = hash_combine(h, hash_str(p->instr()->c_template));
        h = hash_combine(h, hash_str(p->instr()->instr_class));
        // The simulator charges instr()->cycles per call, so two procs
        // differing only in instruction pricing must not share a
        // digest (the cost-result memo keys on it).
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(p->instr()->cycles), "");
        memcpy(&bits, &p->instr()->cycles, sizeof(bits));
        h = hash_combine(h, bits);
    }
    h = hash_combine(h, block_hash(p->body_stmts()));
    p->digest_.v = h;
    p->digest_.valid = true;
    return h;
}

}  // namespace exo2
