#include "src/ir/type.h"

#include "src/ir/errors.h"

namespace exo2 {

bool
is_numeric(ScalarType t)
{
    switch (t) {
      case ScalarType::F32:
      case ScalarType::F64:
      case ScalarType::I8:
      case ScalarType::I32:
        return true;
      default:
        return false;
    }
}

bool
is_float(ScalarType t)
{
    return t == ScalarType::F32 || t == ScalarType::F64;
}

bool
is_integer(ScalarType t)
{
    return t == ScalarType::I8 || t == ScalarType::I32;
}

int
type_size_bytes(ScalarType t)
{
    switch (t) {
      case ScalarType::F32: return 4;
      case ScalarType::F64: return 8;
      case ScalarType::I8: return 1;
      case ScalarType::I32: return 4;
      case ScalarType::Bool: return 1;
      case ScalarType::Index: return 8;
    }
    throw InternalError("unknown scalar type");
}

std::string
type_name(ScalarType t)
{
    switch (t) {
      case ScalarType::F32: return "f32";
      case ScalarType::F64: return "f64";
      case ScalarType::I8: return "i8";
      case ScalarType::I32: return "i32";
      case ScalarType::Bool: return "bool";
      case ScalarType::Index: return "size";
    }
    throw InternalError("unknown scalar type");
}

std::string
type_c_name(ScalarType t)
{
    switch (t) {
      case ScalarType::F32: return "float";
      case ScalarType::F64: return "double";
      case ScalarType::I8: return "int8_t";
      case ScalarType::I32: return "int32_t";
      case ScalarType::Bool: return "bool";
      case ScalarType::Index: return "int64_t";
    }
    throw InternalError("unknown scalar type");
}

ScalarType
type_from_name(const std::string& name)
{
    if (name == "f32") return ScalarType::F32;
    if (name == "f64") return ScalarType::F64;
    if (name == "i8") return ScalarType::I8;
    if (name == "i32") return ScalarType::I32;
    if (name == "bool") return ScalarType::Bool;
    if (name == "size" || name == "index") return ScalarType::Index;
    // Reached from user-written source (parser type annotations).
    throw SchedulingError("unknown scalar type name: '" + name +
                          "' (expected f32, f64, i8, i32, bool, size)");
}

}  // namespace exo2
