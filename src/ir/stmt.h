#ifndef EXO2_IR_STMT_H_
#define EXO2_IR_STMT_H_

/**
 * @file
 * Statements of the Exo 2 object language.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/expr.h"
#include "src/ir/memory.h"

namespace exo2 {

class Stmt;
class Proc;
using StmtPtr = std::shared_ptr<const Stmt>;
using ProcPtr = std::shared_ptr<const Proc>;

/** Statement node kinds. */
enum class StmtKind : uint8_t {
    Assign,      ///< `y[i] = e`
    Reduce,      ///< `y[i] += e`
    Alloc,       ///< `a : f32[n, m] @ DRAM`
    For,         ///< `for i in seq(lo, hi): body`
    If,          ///< `if cond: body else: orelse`
    Pass,        ///< no-op
    Call,        ///< call to a sub-procedure or hardware instruction
    WriteConfig, ///< `cfg.field = e` (Appendix A.8)
    WindowDecl,  ///< `w = a[0:n, j]` window aliasing statement
};

/** Execution mode of a For loop (Appendix A.7 parallelize_loop). */
enum class LoopMode : uint8_t {
    Seq,
    Par,
};

/**
 * One inline memo slot for per-subtree summaries (see cursor/accel.h).
 * Hot scans (pattern search pruning, binder-name probes) read one slot
 * per visited statement; keeping the cache inside the node makes that a
 * pointer dereference instead of a global hash-map probe. The IR is
 * immutable so a filled slot never goes stale; `epoch` implements cache
 * clearing for the ablation kill switches (a slot is valid only while
 * its epoch matches `cursor_accel_epoch()`). Single-threaded like the
 * analysis memo caches (analysis/memo.h).
 */
struct SubtreeMemoSlot
{
    SubtreeMemoSlot() = default;
    /** Copies start cold: the `with_*` rebuilders shallow-copy the
     *  node and then change children, so an inherited (or retained)
     *  summary would describe the wrong subtree. */
    SubtreeMemoSlot(const SubtreeMemoSlot&) {}
    SubtreeMemoSlot& operator=(const SubtreeMemoSlot&)
    {
        epoch = 0;
        data.reset();
        return *this;
    }

    mutable uint64_t epoch = 0;  ///< 0 = never filled
    mutable std::shared_ptr<const void> data;
};

/**
 * An immutable statement node. Like Expr, a single tagged class: the
 * uniform child-access interface is what paths and forwarding traverse.
 */
class Stmt
{
  public:
    StmtKind kind() const { return kind_; }

    /** Memo slot of the pattern subtree index (cursor/pattern.cc). */
    const SubtreeMemoSlot& pattern_memo() const { return pattern_memo_; }

    /** Memo slot of the binder-name summary (primitives/common.cc). */
    const SubtreeMemoSlot& names_memo() const { return names_memo_; }

    /** Cached 64-bit structural hash: `stmt_equal(a, b)` implies equal
     *  hashes, so a hash mismatch rejects equality in O(1). Computed
     *  once per node by the factories / rebuilders over exactly the
     *  fields `stmt_equal` compares (callee and memory by pointer). */
    uint64_t structural_hash() const { return hash_; }

    /** Target name (Assign/Reduce/Alloc/WindowDecl), callee name (Call),
     *  or config name (WriteConfig). */
    const std::string& name() const { return name_; }

    /** Config field (WriteConfig). */
    const std::string& field() const { return field_; }

    /** LHS indices (Assign/Reduce). */
    const std::vector<ExprPtr>& idx() const { return idx_; }

    /** RHS (Assign/Reduce/WriteConfig), window expr (WindowDecl). */
    const ExprPtr& rhs() const { return rhs_; }

    /** Element type (Assign/Reduce/Alloc/WindowDecl). */
    ScalarType type() const { return type_; }

    /** Buffer dims (Alloc); empty means scalar. */
    const std::vector<ExprPtr>& dims() const { return dims_; }

    /** Memory space (Alloc). */
    const MemoryPtr& mem() const { return mem_; }

    /** Loop iterator (For). */
    const std::string& iter() const { return iter_; }
    const ExprPtr& lo() const { return lo_; }
    const ExprPtr& hi() const { return hi_; }
    LoopMode loop_mode() const { return loop_mode_; }

    /** Condition (If). */
    const ExprPtr& cond() const { return cond_; }

    /** Loop / then-branch body (For/If). */
    const std::vector<StmtPtr>& body() const { return body_; }

    /** Else branch (If); may be empty. */
    const std::vector<StmtPtr>& orelse() const { return orelse_; }

    /** Callee procedure (Call). */
    const ProcPtr& callee() const { return callee_; }

    /** Call arguments (Call). */
    const std::vector<ExprPtr>& args() const { return args_; }

    // -- Factories -------------------------------------------------------

    static StmtPtr make_assign(std::string name, std::vector<ExprPtr> idx,
                               ExprPtr rhs, ScalarType t);
    static StmtPtr make_reduce(std::string name, std::vector<ExprPtr> idx,
                               ExprPtr rhs, ScalarType t);
    static StmtPtr make_alloc(std::string name, ScalarType t,
                              std::vector<ExprPtr> dims, MemoryPtr mem);
    static StmtPtr make_for(std::string iter, ExprPtr lo, ExprPtr hi,
                            std::vector<StmtPtr> body,
                            LoopMode mode = LoopMode::Seq);
    static StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> body,
                           std::vector<StmtPtr> orelse = {});
    static StmtPtr make_pass();
    static StmtPtr make_call(ProcPtr callee, std::vector<ExprPtr> args);
    static StmtPtr make_write_config(std::string cfg, std::string field,
                                     ExprPtr rhs);
    static StmtPtr make_window_decl(std::string name, ExprPtr window,
                                    ScalarType t);

    // -- Rebuilders (shallow copies with one field replaced) -------------

    StmtPtr with_body(std::vector<StmtPtr> body) const;
    StmtPtr with_orelse(std::vector<StmtPtr> orelse) const;
    StmtPtr with_rhs(ExprPtr rhs) const;
    StmtPtr with_cond(ExprPtr cond) const;
    StmtPtr with_bounds(ExprPtr lo, ExprPtr hi) const;
    StmtPtr with_idx(std::vector<ExprPtr> idx) const;
    StmtPtr with_dims(std::vector<ExprPtr> dims) const;
    StmtPtr with_args(std::vector<ExprPtr> args) const;
    StmtPtr with_name(std::string name) const;
    StmtPtr with_iter(std::string iter) const;
    StmtPtr with_mem(MemoryPtr mem) const;
    StmtPtr with_type(ScalarType t) const;
    StmtPtr with_loop_mode(LoopMode mode) const;
    StmtPtr with_callee(ProcPtr callee) const;

    /** Whether this statement kind writes data (Assign/Reduce/Call/...). */
    bool is_write() const
    {
        return kind_ == StmtKind::Assign || kind_ == StmtKind::Reduce;
    }

  private:
    Stmt() = default;

    /** Recompute hash_ from the current fields (factories, with_*). */
    void rehash();

    uint64_t hash_ = 0;
    SubtreeMemoSlot pattern_memo_;
    SubtreeMemoSlot names_memo_;
    StmtKind kind_ = StmtKind::Pass;
    std::string name_;
    std::string field_;
    std::vector<ExprPtr> idx_;
    ExprPtr rhs_;
    ScalarType type_ = ScalarType::F32;
    std::vector<ExprPtr> dims_;
    MemoryPtr mem_;
    std::string iter_;
    ExprPtr lo_;
    ExprPtr hi_;
    LoopMode loop_mode_ = LoopMode::Seq;
    ExprPtr cond_;
    std::vector<StmtPtr> body_;
    std::vector<StmtPtr> orelse_;
    ProcPtr callee_;
    std::vector<ExprPtr> args_;
};

/** Deep structural equality of statements (and their subtrees). */
bool stmt_equal(const StmtPtr& a, const StmtPtr& b);

/** Deep structural equality of statement blocks. */
bool block_equal(const std::vector<StmtPtr>& a, const std::vector<StmtPtr>& b);

/** Combined structural hash of a statement block. */
uint64_t block_hash(const std::vector<StmtPtr>& b);

/**
 * Substitute scalar variable `name` by expression `repl` in all
 * expressions of `s` (recursively). Does not rename binders.
 */
StmtPtr stmt_subst(const StmtPtr& s, const std::string& name,
                   const ExprPtr& repl);

/** Substitute in a whole block. */
std::vector<StmtPtr> block_subst(const std::vector<StmtPtr>& b,
                                 const std::string& name,
                                 const ExprPtr& repl);

/** True if any expression under `s` reads `name`, or `s` writes it. */
bool stmt_uses(const StmtPtr& s, const std::string& name);

}  // namespace exo2

#endif  // EXO2_IR_STMT_H_
