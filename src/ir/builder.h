#ifndef EXO2_IR_BUILDER_H_
#define EXO2_IR_BUILDER_H_

/**
 * @file
 * Convenience constructors and operator overloads for authoring object
 * code in C++. Most kernels in `src/kernels/` are written with the text
 * parser instead; the builder is the programmatic escape hatch (and is
 * what the parser itself uses).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/proc.h"

namespace exo2 {

/** Index-typed integer literal. */
inline ExprPtr
idx_const(int64_t v)
{
    return Expr::make_const(static_cast<double>(v), ScalarType::Index);
}

/** Floating literal of the given element type. */
inline ExprPtr
num_const(double v, ScalarType t = ScalarType::F32)
{
    return Expr::make_const(v, t);
}

/** Boolean literal. */
inline ExprPtr
bool_const(bool v)
{
    return Expr::make_const(v ? 1.0 : 0.0, ScalarType::Bool);
}

/** Read of an Index-typed scalar variable (loop iterator / size arg). */
inline ExprPtr
var(const std::string& name)
{
    return Expr::make_read(name, {}, ScalarType::Index);
}

/** Read of a buffer element (or numeric scalar if idx empty). */
inline ExprPtr
read(const std::string& name, std::vector<ExprPtr> idx,
     ScalarType t = ScalarType::F32)
{
    return Expr::make_read(name, std::move(idx), t);
}

// Arithmetic operator overloads (found by ADL on ExprPtr).

inline ExprPtr
operator+(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Add, a, b);
}

inline ExprPtr
operator-(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Sub, a, b);
}

inline ExprPtr
operator*(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Mul, a, b);
}

inline ExprPtr
operator/(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Div, a, b);
}

inline ExprPtr
operator%(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Mod, a, b);
}

inline ExprPtr
operator-(const ExprPtr& a)
{
    return Expr::make_usub(a);
}

/** Comparison helpers (named, to avoid surprising bool conversions). */
inline ExprPtr
lt(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Lt, a, b);
}

inline ExprPtr
le(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Le, a, b);
}

inline ExprPtr
gt(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Gt, a, b);
}

inline ExprPtr
ge(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Ge, a, b);
}

inline ExprPtr
eq(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::Eq, a, b);
}

inline ExprPtr
land(const ExprPtr& a, const ExprPtr& b)
{
    return Expr::make_binop(BinOpKind::And, a, b);
}

/** Size argument (`N: size`). */
inline ProcArg
size_arg(const std::string& name)
{
    ProcArg a;
    a.name = name;
    a.type = ScalarType::Index;
    a.is_size = true;
    return a;
}

/** Scalar numeric argument (`scale: f32`). */
inline ProcArg
scalar_arg(const std::string& name, ScalarType t)
{
    ProcArg a;
    a.name = name;
    a.type = t;
    return a;
}

/** Dense buffer argument (`A: f32[M, N] @ DRAM`). */
inline ProcArg
buffer_arg(const std::string& name, ScalarType t, std::vector<ExprPtr> dims,
           MemoryPtr mem = nullptr, bool is_window = false)
{
    ProcArg a;
    a.name = name;
    a.type = t;
    a.dims = std::move(dims);
    a.mem = mem ? std::move(mem) : mem_dram();
    a.is_window = is_window;
    return a;
}

}  // namespace exo2

#endif  // EXO2_IR_BUILDER_H_
