#include "src/ir/path.h"

#include <sstream>

namespace exo2 {

std::string
path_label_name(PathLabel l)
{
    switch (l) {
      case PathLabel::Body: return "body";
      case PathLabel::Orelse: return "orelse";
      case PathLabel::Cond: return "cond";
      case PathLabel::Lo: return "lo";
      case PathLabel::Hi: return "hi";
      case PathLabel::Rhs: return "rhs";
      case PathLabel::Idx: return "idx";
      case PathLabel::Dim: return "dim";
      case PathLabel::Arg: return "arg";
      case PathLabel::OpLhs: return "lhs";
      case PathLabel::OpRhs: return "rhs";
    }
    return "?";
}

std::string
CursorLoc::to_string() const
{
    std::ostringstream os;
    for (size_t i = 0; i < path.size(); i++) {
        if (i)
            os << ".";
        os << path_label_name(path[i].label);
        if (path[i].index >= 0)
            os << "[" << path[i].index << "]";
    }
    if (kind == CursorKind::Gap)
        os << " (gap)";
    if (kind == CursorKind::Block)
        os << ":" << hi << " (block)";
    return os.str();
}

}  // namespace exo2
