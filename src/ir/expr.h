#ifndef EXO2_IR_EXPR_H_
#define EXO2_IR_EXPR_H_

/**
 * @file
 * Expressions of the Exo 2 object language.
 *
 * Expressions are immutable and shared; scheduling primitives rebuild
 * the spine of the AST along the edited path and share every untouched
 * subtree, which is what makes cursor forwarding (Section 5.2)
 * well-defined.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/type.h"

namespace exo2 {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/** Expression node kinds. */
enum class ExprKind : uint8_t {
    Const,      ///< Numeric / boolean literal.
    Read,       ///< Scalar variable or buffer element read: `A[i, j]`.
    BinOp,      ///< Binary arithmetic / comparison / logic.
    USub,       ///< Unary negation.
    Window,     ///< Buffer window `A[0:n, j]`; call arguments only.
    Stride,     ///< `stride(A, dim)`; resolved at call boundaries.
    ReadConfig, ///< Configuration-state read: `cfg.field` (Appendix A.8).
    Extern,     ///< Opaque extern scalar function, e.g. `relu(x)`.
};

/** Binary operators. Div/Mod are floor semantics on Index type. */
enum class BinOpKind : uint8_t {
    Add, Sub, Mul, Div, Mod,
    Lt, Le, Gt, Ge, Eq, Ne,
    And, Or,
};

/** True for Lt..Ne / And / Or (result type Bool). */
bool is_predicate_op(BinOpKind op);

/** Object-language spelling, e.g. "+" or "<=". */
std::string binop_name(BinOpKind op);

/**
 * One dimension of a Window expression: either a point `e` or an
 * interval `lo:hi` (half-open).
 */
struct WindowDim
{
    ExprPtr lo;           ///< Point expr, or interval low bound.
    ExprPtr hi;           ///< Null for a point access.
    bool is_point() const { return hi == nullptr; }
};

/**
 * An immutable expression node.
 *
 * A single class with a kind tag (rather than a virtual hierarchy) keeps
 * structural operations — equality, substitution, path navigation,
 * unification — in one place each.
 *
 * Nodes are hash-consed: every factory interns through a process-global
 * table (see ir/interner.h), so structurally equal expressions are the
 * same object and `a == b` decides structural equality in O(1). The
 * cached structural hash and dense intern id are what the analysis
 * layer keys its memo caches on.
 */
class Expr
{
  public:
    ExprKind kind() const { return kind_; }
    ScalarType type() const { return type_; }

    /** Cached 64-bit structural hash (equal for structurally equal
     *  exprs; computed once at construction). */
    uint64_t structural_hash() const { return hash_; }

    /** Dense id unique to this interned node (creation order). */
    uint64_t intern_id() const { return id_; }

    /** Literal value (Const). Bools are 0.0/1.0. */
    double const_value() const { return const_value_; }

    /** Variable / buffer / config name (Read, Window, Stride, ReadConfig,
     *  Extern function name). */
    const std::string& name() const { return name_; }

    /** Config field (ReadConfig). */
    const std::string& field() const { return field_; }

    /** Buffer indices (Read), or extern-call arguments (Extern). */
    const std::vector<ExprPtr>& idx() const { return idx_; }

    /** Window dimensions (Window). */
    const std::vector<WindowDim>& window_dims() const { return wdims_; }

    /** Operator (BinOp). */
    BinOpKind op() const { return op_; }
    const ExprPtr& lhs() const { return lhs_; }
    const ExprPtr& rhs() const { return rhs_; }

    /** Stride dimension (Stride). */
    int stride_dim() const { return stride_dim_; }

    // -- Factories -------------------------------------------------------

    static ExprPtr make_const(double v, ScalarType t);
    static ExprPtr make_read(std::string name, std::vector<ExprPtr> idx,
                             ScalarType t);
    static ExprPtr make_binop(BinOpKind op, ExprPtr lhs, ExprPtr rhs);
    static ExprPtr make_usub(ExprPtr e);
    static ExprPtr make_window(std::string name, std::vector<WindowDim> dims,
                               ScalarType t);
    static ExprPtr make_stride(std::string name, int dim);
    static ExprPtr make_read_config(std::string cfg, std::string field,
                                    ScalarType t);
    static ExprPtr make_extern(std::string fn, std::vector<ExprPtr> args,
                               ScalarType t);

    /** Rebuild with the same kind but new children. */
    ExprPtr with_children(std::vector<ExprPtr> children) const;

    /** All expression children in path order (see cursor/path.h). */
    std::vector<ExprPtr> children() const;

  private:
    Expr() = default;

    /** Intern a candidate node: return the existing structurally equal
     *  node, or move `tmp` into the table. Defined in expr.cc. */
    static ExprPtr intern(Expr&& tmp);

    uint64_t hash_ = 0;
    uint64_t id_ = 0;
    ExprKind kind_ = ExprKind::Const;
    ScalarType type_ = ScalarType::Index;
    double const_value_ = 0.0;
    std::string name_;
    std::string field_;
    std::vector<ExprPtr> idx_;
    std::vector<WindowDim> wdims_;
    BinOpKind op_ = BinOpKind::Add;
    ExprPtr lhs_;
    ExprPtr rhs_;
    int stride_dim_ = 0;
};

/** Deep structural equality (names compared literally). */
bool expr_equal(const ExprPtr& a, const ExprPtr& b);

/** Substitute reads of scalar variable `name` with `repl` throughout. */
ExprPtr expr_subst(const ExprPtr& e, const std::string& name,
                   const ExprPtr& repl);

/** Collect names of all variables/buffers read by `e` (including idx). */
void expr_collect_reads(const ExprPtr& e, std::vector<std::string>* out);

/** True if `e` reads variable or buffer `name` anywhere. */
bool expr_uses(const ExprPtr& e, const std::string& name);

}  // namespace exo2

#endif  // EXO2_IR_EXPR_H_
