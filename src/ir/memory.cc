#include "src/ir/memory.h"

#include "src/ir/errors.h"

namespace exo2 {

namespace {

MemoryPtr
make(const char* name, MemoryKind kind, int vec_bytes = 0,
     int64_t capacity = 0)
{
    return std::make_shared<const Memory>(name, kind, vec_bytes, capacity);
}

}  // namespace

MemoryPtr
mem_dram()
{
    static MemoryPtr m = make("DRAM", MemoryKind::Dram);
    return m;
}

MemoryPtr
mem_dram_static()
{
    static MemoryPtr m = make("DRAM_STATIC", MemoryKind::Dram);
    return m;
}

MemoryPtr
mem_dram_stack()
{
    static MemoryPtr m = make("DRAM_STACK", MemoryKind::Dram);
    return m;
}

MemoryPtr
mem_avx2()
{
    static MemoryPtr m = make("AVX2", MemoryKind::Vector, 32);
    return m;
}

MemoryPtr
mem_avx512()
{
    static MemoryPtr m = make("AVX512", MemoryKind::Vector, 64);
    return m;
}

MemoryPtr
mem_gemm_scratch()
{
    static MemoryPtr m =
        make("GEMM_SCRATCH", MemoryKind::Scratchpad, 0, 256 * 1024);
    return m;
}

MemoryPtr
mem_gemm_accum()
{
    static MemoryPtr m =
        make("GEMM_ACCUM", MemoryKind::Accumulator, 0, 16 * 1024);
    return m;
}

MemoryPtr
memory_from_name(const std::string& name)
{
    if (name == "DRAM") return mem_dram();
    if (name == "DRAM_STATIC") return mem_dram_static();
    if (name == "DRAM_STACK") return mem_dram_stack();
    if (name == "AVX2" || name == "VEC_AVX2") return mem_avx2();
    if (name == "AVX512" || name == "VEC_AVX512") return mem_avx512();
    if (name == "GEMM_SCRATCH") return mem_gemm_scratch();
    if (name == "GEMM_ACCUM") return mem_gemm_accum();
    throw InternalError("unknown memory space: " + name);
}

}  // namespace exo2
