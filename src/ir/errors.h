#ifndef EXO2_IR_ERRORS_H_
#define EXO2_IR_ERRORS_H_

/**
 * @file
 * The three user-facing error kinds of Section 3.3 of the paper, plus
 * the fault taxonomy for executing untrusted generated code
 * (DESIGN.md §7).
 */

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace exo2 {

/**
 * Raised by a primitive's safety analysis when a requested rewrite would
 * not preserve functional equivalence. User schedules may catch this to
 * fall back to a more general strategy (Section 3.3).
 */
class SchedulingError : public std::runtime_error
{
  public:
    explicit SchedulingError(const std::string& msg)
        : std::runtime_error("SchedulingError: " + msg) {}
};

/**
 * Raised when cursor navigation or forwarding produces an invalid
 * location (Section 5.2), e.g. `parent()` of a top-level statement.
 */
class InvalidCursorError : public std::runtime_error
{
  public:
    explicit InvalidCursorError(const std::string& msg)
        : std::runtime_error("InvalidCursorError: " + msg) {}
};

/** An internal compiler bug; never the user's fault. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string& msg)
        : std::logic_error("InternalError: " + msg) {}
};

/** A verification-harness failure (compile error, guard-zone damage,
 *  marshalling mismatch). Distinct from SchedulingError: it never
 *  indicates user error, always an engine or environment problem. */
class VerifyError : public std::runtime_error
{
  public:
    explicit VerifyError(const std::string& msg)
        : std::runtime_error("VerifyError: " + msg) {}
};

/** A rejected configuration value (environment knob out of range,
 *  malformed daemon option). Thrown at startup so a misconfigured
 *  worker fails loudly instead of running with silent defaults; the
 *  message names the knob, the offending value, and the accepted
 *  range (src/util/env.h). */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string& msg)
        : std::runtime_error("ConfigError: " + msg) {}
};

// ---------------------------------------------------------------------------
// Fault taxonomy (DESIGN.md §7)
//
// Every layer that touches generated code — codegen, the external C
// compiler, dlopen, and execution of the loaded kernel — can fail, and
// at production scale those failures are expected inputs rather than
// aborts. A RuntimeFault is the structured description of one such
// failure: which pipeline phase it occurred in, how it manifested
// (compiler exit code, fatal signal, watchdog timeout), and how long
// the faulting step ran. Consumers (the tri-oracle, the fuzzer, the
// autotuner) treat faults as data: score the candidate infeasible,
// record a repro, fall back down the ISA chain — never die.
// ---------------------------------------------------------------------------

/** Pipeline phase a fault occurred in. */
enum class FaultPhase {
    Codegen,  ///< C source generation
    Compile,  ///< external C compiler invocation
    Load,     ///< dlopen / dlsym of the built shared object
    Execute,  ///< running the loaded kernel
    Cache,    ///< persistent tune/compile cache access (DESIGN.md §8)
    Service,  ///< scheduling-daemon request handling (DESIGN.md §8)
};

/** How a fault manifested. */
enum class FaultKind {
    None,            ///< no fault (the default-constructed state)
    CompileError,    ///< compiler exited nonzero or died on a signal
    CompileTimeout,  ///< compiler exceeded its per-invocation timeout
    LoadError,       ///< dlopen/dlsym failed on the built object
    Crash,           ///< kernel died on a fatal signal or bad exit
    Timeout,         ///< kernel exceeded the wall-clock watchdog
    ResourceLimit,   ///< kernel hit an rlimit (CPU seconds, address space)
    SandboxError,    ///< isolation plumbing failed (fork/mmap) — harness
    CacheCorrupt,    ///< cache entry failed checksum/format validation
    CacheStale,      ///< cache entry from an old library/model version
    QueueFull,       ///< service queue at capacity; request rejected
    DeadlineExceeded,///< request deadline elapsed; degraded result
};

inline const char*
fault_phase_name(FaultPhase p)
{
    switch (p) {
      case FaultPhase::Codegen: return "codegen";
      case FaultPhase::Compile: return "compile";
      case FaultPhase::Load: return "load";
      case FaultPhase::Execute: return "execute";
      case FaultPhase::Cache: return "cache";
      case FaultPhase::Service: return "service";
    }
    return "?";
}

inline const char*
fault_kind_name(FaultKind k)
{
    switch (k) {
      case FaultKind::None: return "none";
      case FaultKind::CompileError: return "compile_error";
      case FaultKind::CompileTimeout: return "compile_timeout";
      case FaultKind::LoadError: return "load_error";
      case FaultKind::Crash: return "crash";
      case FaultKind::Timeout: return "timeout";
      case FaultKind::ResourceLimit: return "resource_limit";
      case FaultKind::SandboxError: return "sandbox_error";
      case FaultKind::CacheCorrupt: return "cache_corrupt";
      case FaultKind::CacheStale: return "cache_stale";
      case FaultKind::QueueFull: return "queue_full";
      case FaultKind::DeadlineExceeded: return "deadline_exceeded";
    }
    return "?";
}

/** One structured fault from executing untrusted generated code. */
struct RuntimeFault
{
    FaultKind kind = FaultKind::None;
    FaultPhase phase = FaultPhase::Execute;
    /** Fatal signal number (kernel crash / compiler killed), else 0. */
    int signal_number = 0;
    /** Process exit code when the child exited normally, else 0. */
    int exit_code = 0;
    /** Wall-clock seconds the faulting step ran before failing. */
    double elapsed_seconds = 0.0;
    /** Free-form context: compiler stderr, dlerror text, etc. */
    std::string detail;

    bool is_fault() const { return kind != FaultKind::None; }

    std::string to_string() const
    {
        std::string s = std::string(fault_kind_name(kind)) + " in " +
                        fault_phase_name(phase) + " phase";
        if (signal_number)
            s += " (signal " + std::to_string(signal_number) + ")";
        if (exit_code)
            s += " (exit code " + std::to_string(exit_code) + ")";
        if (elapsed_seconds > 0) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), " after %.3fs",
                          elapsed_seconds);
            s += buf;
        }
        if (!detail.empty())
            s += ": " + detail;
        return s;
    }
};

/**
 * A RuntimeFault thrown as an exception, for layers whose interface is
 * exception-based (e.g. CompiledProc construction). Derives from
 * VerifyError so existing harness-level catch sites keep working;
 * fault-aware consumers catch FaultError first and recover the
 * structured fault via `fault()`.
 */
class FaultError : public VerifyError
{
  public:
    explicit FaultError(RuntimeFault f)
        : VerifyError(f.to_string()), fault_(std::move(f)) {}

    const RuntimeFault& fault() const { return fault_; }

  private:
    RuntimeFault fault_;
};

}  // namespace exo2

#endif  // EXO2_IR_ERRORS_H_
