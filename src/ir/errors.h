#ifndef EXO2_IR_ERRORS_H_
#define EXO2_IR_ERRORS_H_

/**
 * @file
 * The three user-facing error kinds of Section 3.3 of the paper.
 */

#include <stdexcept>
#include <string>

namespace exo2 {

/**
 * Raised by a primitive's safety analysis when a requested rewrite would
 * not preserve functional equivalence. User schedules may catch this to
 * fall back to a more general strategy (Section 3.3).
 */
class SchedulingError : public std::runtime_error
{
  public:
    explicit SchedulingError(const std::string& msg)
        : std::runtime_error("SchedulingError: " + msg) {}
};

/**
 * Raised when cursor navigation or forwarding produces an invalid
 * location (Section 5.2), e.g. `parent()` of a top-level statement.
 */
class InvalidCursorError : public std::runtime_error
{
  public:
    explicit InvalidCursorError(const std::string& msg)
        : std::runtime_error("InvalidCursorError: " + msg) {}
};

/** An internal compiler bug; never the user's fault. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string& msg)
        : std::logic_error("InternalError: " + msg) {}
};

}  // namespace exo2

#endif  // EXO2_IR_ERRORS_H_
