#include "src/ir/stmt.h"

#include "src/ir/errors.h"

namespace exo2 {

StmtPtr
Stmt::make_assign(std::string name, std::vector<ExprPtr> idx, ExprPtr rhs,
                  ScalarType t)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Assign;
    s->name_ = std::move(name);
    s->idx_ = std::move(idx);
    s->rhs_ = std::move(rhs);
    s->type_ = t;
    return s;
}

StmtPtr
Stmt::make_reduce(std::string name, std::vector<ExprPtr> idx, ExprPtr rhs,
                  ScalarType t)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Reduce;
    s->name_ = std::move(name);
    s->idx_ = std::move(idx);
    s->rhs_ = std::move(rhs);
    s->type_ = t;
    return s;
}

StmtPtr
Stmt::make_alloc(std::string name, ScalarType t, std::vector<ExprPtr> dims,
                 MemoryPtr mem)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Alloc;
    s->name_ = std::move(name);
    s->type_ = t;
    s->dims_ = std::move(dims);
    s->mem_ = mem ? std::move(mem) : mem_dram();
    return s;
}

StmtPtr
Stmt::make_for(std::string iter, ExprPtr lo, ExprPtr hi,
               std::vector<StmtPtr> body, LoopMode mode)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::For;
    s->iter_ = std::move(iter);
    s->lo_ = std::move(lo);
    s->hi_ = std::move(hi);
    s->body_ = std::move(body);
    s->loop_mode_ = mode;
    return s;
}

StmtPtr
Stmt::make_if(ExprPtr cond, std::vector<StmtPtr> body,
              std::vector<StmtPtr> orelse)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::If;
    s->cond_ = std::move(cond);
    s->body_ = std::move(body);
    s->orelse_ = std::move(orelse);
    return s;
}

StmtPtr
Stmt::make_pass()
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Pass;
    return s;
}

StmtPtr
Stmt::make_call(ProcPtr callee, std::vector<ExprPtr> args)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Call;
    s->callee_ = std::move(callee);
    s->args_ = std::move(args);
    return s;
}

StmtPtr
Stmt::make_write_config(std::string cfg, std::string field, ExprPtr rhs)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::WriteConfig;
    s->name_ = std::move(cfg);
    s->field_ = std::move(field);
    s->rhs_ = std::move(rhs);
    return s;
}

StmtPtr
Stmt::make_window_decl(std::string name, ExprPtr window, ScalarType t)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::WindowDecl;
    s->name_ = std::move(name);
    s->rhs_ = std::move(window);
    s->type_ = t;
    return s;
}

#define EXO2_STMT_WITH(FIELD, PARAMT, PARAM)                                 \
    StmtPtr Stmt::with_##FIELD(PARAMT PARAM) const                          \
    {                                                                        \
        auto s = std::shared_ptr<Stmt>(new Stmt(*this));                    \
        s->FIELD##_ = std::move(PARAM);                                     \
        return s;                                                            \
    }

EXO2_STMT_WITH(body, std::vector<StmtPtr>, body)
EXO2_STMT_WITH(orelse, std::vector<StmtPtr>, orelse)
EXO2_STMT_WITH(rhs, ExprPtr, rhs)
EXO2_STMT_WITH(cond, ExprPtr, cond)
EXO2_STMT_WITH(idx, std::vector<ExprPtr>, idx)
EXO2_STMT_WITH(dims, std::vector<ExprPtr>, dims)
EXO2_STMT_WITH(args, std::vector<ExprPtr>, args)
EXO2_STMT_WITH(name, std::string, name)
EXO2_STMT_WITH(iter, std::string, iter)
EXO2_STMT_WITH(mem, MemoryPtr, mem)
EXO2_STMT_WITH(callee, ProcPtr, callee)

#undef EXO2_STMT_WITH

StmtPtr
Stmt::with_bounds(ExprPtr lo, ExprPtr hi) const
{
    auto s = std::shared_ptr<Stmt>(new Stmt(*this));
    s->lo_ = std::move(lo);
    s->hi_ = std::move(hi);
    return s;
}

StmtPtr
Stmt::with_type(ScalarType t) const
{
    auto s = std::shared_ptr<Stmt>(new Stmt(*this));
    s->type_ = t;
    return s;
}

StmtPtr
Stmt::with_loop_mode(LoopMode mode) const
{
    auto s = std::shared_ptr<Stmt>(new Stmt(*this));
    s->loop_mode_ = mode;
    return s;
}

bool
stmt_equal(const StmtPtr& a, const StmtPtr& b)
{
    if (a == b)
        return true;
    if (!a || !b || a->kind() != b->kind())
        return false;
    switch (a->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        if (a->name() != b->name() || a->type() != b->type() ||
            a->idx().size() != b->idx().size()) {
            return false;
        }
        for (size_t i = 0; i < a->idx().size(); i++) {
            if (!expr_equal(a->idx()[i], b->idx()[i]))
                return false;
        }
        return expr_equal(a->rhs(), b->rhs());
      }
      case StmtKind::Alloc: {
        if (a->name() != b->name() || a->type() != b->type() ||
            a->mem() != b->mem() || a->dims().size() != b->dims().size()) {
            return false;
        }
        for (size_t i = 0; i < a->dims().size(); i++) {
            if (!expr_equal(a->dims()[i], b->dims()[i]))
                return false;
        }
        return true;
      }
      case StmtKind::For:
        return a->iter() == b->iter() &&
               a->loop_mode() == b->loop_mode() &&
               expr_equal(a->lo(), b->lo()) &&
               expr_equal(a->hi(), b->hi()) &&
               block_equal(a->body(), b->body());
      case StmtKind::If:
        return expr_equal(a->cond(), b->cond()) &&
               block_equal(a->body(), b->body()) &&
               block_equal(a->orelse(), b->orelse());
      case StmtKind::Pass:
        return true;
      case StmtKind::Call: {
        if (a->callee() != b->callee() || a->args().size() != b->args().size())
            return false;
        for (size_t i = 0; i < a->args().size(); i++) {
            if (!expr_equal(a->args()[i], b->args()[i]))
                return false;
        }
        return true;
      }
      case StmtKind::WriteConfig:
        return a->name() == b->name() && a->field() == b->field() &&
               expr_equal(a->rhs(), b->rhs());
      case StmtKind::WindowDecl:
        return a->name() == b->name() && expr_equal(a->rhs(), b->rhs());
    }
    throw InternalError("unknown stmt kind");
}

bool
block_equal(const std::vector<StmtPtr>& a, const std::vector<StmtPtr>& b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++) {
        if (!stmt_equal(a[i], b[i]))
            return false;
    }
    return true;
}

StmtPtr
stmt_subst(const StmtPtr& s, const std::string& name, const ExprPtr& repl)
{
    if (!s)
        return s;
    // A binder with the same name shadows `name` below it.
    if (s->kind() == StmtKind::For && s->iter() == name) {
        return s->with_bounds(expr_subst(s->lo(), name, repl),
                              expr_subst(s->hi(), name, repl));
    }
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        std::vector<ExprPtr> idx;
        idx.reserve(s->idx().size());
        for (const auto& e : s->idx())
            idx.push_back(expr_subst(e, name, repl));
        return s->with_idx(std::move(idx))
                ->with_rhs(expr_subst(s->rhs(), name, repl));
      }
      case StmtKind::Alloc: {
        std::vector<ExprPtr> dims;
        dims.reserve(s->dims().size());
        for (const auto& e : s->dims())
            dims.push_back(expr_subst(e, name, repl));
        return s->with_dims(std::move(dims));
      }
      case StmtKind::For:
        return s->with_bounds(expr_subst(s->lo(), name, repl),
                              expr_subst(s->hi(), name, repl))
                ->with_body(block_subst(s->body(), name, repl));
      case StmtKind::If:
        return s->with_cond(expr_subst(s->cond(), name, repl))
                ->with_body(block_subst(s->body(), name, repl))
                ->with_orelse(block_subst(s->orelse(), name, repl));
      case StmtKind::Pass:
        return s;
      case StmtKind::Call: {
        std::vector<ExprPtr> args;
        args.reserve(s->args().size());
        for (const auto& e : s->args())
            args.push_back(expr_subst(e, name, repl));
        return s->with_args(std::move(args));
      }
      case StmtKind::WriteConfig:
      case StmtKind::WindowDecl:
        return s->with_rhs(expr_subst(s->rhs(), name, repl));
    }
    throw InternalError("unknown stmt kind");
}

std::vector<StmtPtr>
block_subst(const std::vector<StmtPtr>& b, const std::string& name,
            const ExprPtr& repl)
{
    std::vector<StmtPtr> out;
    out.reserve(b.size());
    for (const auto& s : b)
        out.push_back(stmt_subst(s, name, repl));
    return out;
}

bool
stmt_uses(const StmtPtr& s, const std::string& name)
{
    if (!s)
        return false;
    if (s->name() == name &&
        (s->kind() == StmtKind::Assign || s->kind() == StmtKind::Reduce ||
         s->kind() == StmtKind::Alloc || s->kind() == StmtKind::WindowDecl)) {
        return true;
    }
    for (const auto& e : s->idx()) {
        if (expr_uses(e, name))
            return true;
    }
    for (const auto& e : s->dims()) {
        if (expr_uses(e, name))
            return true;
    }
    for (const auto& e : s->args()) {
        if (expr_uses(e, name))
            return true;
    }
    if (expr_uses(s->rhs(), name) || expr_uses(s->cond(), name) ||
        expr_uses(s->lo(), name) || expr_uses(s->hi(), name)) {
        return true;
    }
    for (const auto& c : s->body()) {
        if (stmt_uses(c, name))
            return true;
    }
    for (const auto& c : s->orelse()) {
        if (stmt_uses(c, name))
            return true;
    }
    return false;
}

}  // namespace exo2
