#include "src/ir/stmt.h"

#include "src/ir/errors.h"
#include "src/ir/interner.h"
#include "src/ir/proc.h"

namespace exo2 {

namespace {

uint64_t
expr_hash_or(const ExprPtr& e, uint64_t fallback)
{
    return e ? e->structural_hash() : fallback;
}

uint64_t
hash_expr_list(uint64_t h, const std::vector<ExprPtr>& es)
{
    h = hash_combine(h, es.size());
    for (const auto& e : es)
        h = hash_combine(h, e->structural_hash());
    return h;
}

uint64_t
hash_stmt_list(uint64_t h, const std::vector<StmtPtr>& b)
{
    h = hash_combine(h, b.size());
    for (const auto& s : b)
        h = hash_combine(h, s->structural_hash());
    return h;
}

}  // namespace

void
Stmt::rehash()
{
    // Mirrors stmt_equal: hash exactly the fields equality compares,
    // per kind, so equal statements always share a hash.
    uint64_t h = hash_combine(0x57A7ull, static_cast<uint64_t>(kind_));
    switch (kind_) {
      case StmtKind::Assign:
      case StmtKind::Reduce:
        h = hash_combine(h, hash_str(name_));
        h = hash_combine(h, static_cast<uint64_t>(type_));
        h = hash_expr_list(h, idx_);
        h = hash_combine(h, expr_hash_or(rhs_, 0x2Aull));
        break;
      case StmtKind::Alloc:
        h = hash_combine(h, hash_str(name_));
        h = hash_combine(h, static_cast<uint64_t>(type_));
        // Memories are named singletons; hashing the name (not the
        // address) keeps the hash stable and address-reuse-proof while
        // still agreeing with pointer equality in stmt_equal.
        h = hash_combine(h, mem_ ? hash_str(mem_->name()) : 0x3E3Full);
        h = hash_expr_list(h, dims_);
        break;
      case StmtKind::For:
        h = hash_combine(h, hash_str(iter_));
        h = hash_combine(h, static_cast<uint64_t>(loop_mode_));
        h = hash_combine(h, expr_hash_or(lo_, 0x10ull));
        h = hash_combine(h, expr_hash_or(hi_, 0x11ull));
        h = hash_stmt_list(h, body_);
        break;
      case StmtKind::If:
        h = hash_combine(h, expr_hash_or(cond_, 0x1Full));
        h = hash_stmt_list(h, body_);
        h = hash_stmt_list(h, orelse_);
        break;
      case StmtKind::Pass:
        break;
      case StmtKind::Call:
        // Hash the callee by content (its structural digest), not by
        // address: stmt_equal's pointer comparison still implies equal
        // hashes (same pointer => same digest), and digest-keyed
        // consumers — the cost-result memo, the autotuner's state
        // dedup — can never be fooled by a recycled allocation.
        if (callee_)
            h = hash_combine(h, proc_digest(callee_));
        else  // pattern-only call: the name stands in
            h = hash_combine(h, hash_str(name_));
        h = hash_expr_list(h, args_);
        break;
      case StmtKind::WriteConfig:
        h = hash_combine(h, hash_str(name_));
        h = hash_combine(h, hash_str(field_));
        h = hash_combine(h, expr_hash_or(rhs_, 0x2Aull));
        break;
      case StmtKind::WindowDecl:
        h = hash_combine(h, hash_str(name_));
        h = hash_combine(h, expr_hash_or(rhs_, 0x2Aull));
        break;
    }
    hash_ = h;
}

StmtPtr
Stmt::make_assign(std::string name, std::vector<ExprPtr> idx, ExprPtr rhs,
                  ScalarType t)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Assign;
    s->name_ = std::move(name);
    s->idx_ = std::move(idx);
    s->rhs_ = std::move(rhs);
    s->type_ = t;
    s->rehash();
    return s;
}

StmtPtr
Stmt::make_reduce(std::string name, std::vector<ExprPtr> idx, ExprPtr rhs,
                  ScalarType t)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Reduce;
    s->name_ = std::move(name);
    s->idx_ = std::move(idx);
    s->rhs_ = std::move(rhs);
    s->type_ = t;
    s->rehash();
    return s;
}

StmtPtr
Stmt::make_alloc(std::string name, ScalarType t, std::vector<ExprPtr> dims,
                 MemoryPtr mem)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Alloc;
    s->name_ = std::move(name);
    s->type_ = t;
    s->dims_ = std::move(dims);
    s->mem_ = mem ? std::move(mem) : mem_dram();
    s->rehash();
    return s;
}

StmtPtr
Stmt::make_for(std::string iter, ExprPtr lo, ExprPtr hi,
               std::vector<StmtPtr> body, LoopMode mode)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::For;
    s->iter_ = std::move(iter);
    s->lo_ = std::move(lo);
    s->hi_ = std::move(hi);
    s->body_ = std::move(body);
    s->loop_mode_ = mode;
    s->rehash();
    return s;
}

StmtPtr
Stmt::make_if(ExprPtr cond, std::vector<StmtPtr> body,
              std::vector<StmtPtr> orelse)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::If;
    s->cond_ = std::move(cond);
    s->body_ = std::move(body);
    s->orelse_ = std::move(orelse);
    s->rehash();
    return s;
}

StmtPtr
Stmt::make_pass()
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Pass;
    s->rehash();
    return s;
}

StmtPtr
Stmt::make_call(ProcPtr callee, std::vector<ExprPtr> args)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::Call;
    s->callee_ = std::move(callee);
    s->args_ = std::move(args);
    s->rehash();
    return s;
}

StmtPtr
Stmt::make_write_config(std::string cfg, std::string field, ExprPtr rhs)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::WriteConfig;
    s->name_ = std::move(cfg);
    s->field_ = std::move(field);
    s->rhs_ = std::move(rhs);
    s->rehash();
    return s;
}

StmtPtr
Stmt::make_window_decl(std::string name, ExprPtr window, ScalarType t)
{
    auto s = std::shared_ptr<Stmt>(new Stmt());
    s->kind_ = StmtKind::WindowDecl;
    s->name_ = std::move(name);
    s->rhs_ = std::move(window);
    s->type_ = t;
    s->rehash();
    return s;
}

#define EXO2_STMT_WITH(FIELD, PARAMT, PARAM)                                 \
    StmtPtr Stmt::with_##FIELD(PARAMT PARAM) const                          \
    {                                                                        \
        auto s = std::shared_ptr<Stmt>(new Stmt(*this));                    \
        s->FIELD##_ = std::move(PARAM);                                     \
        s->rehash();                                                         \
        return s;                                                            \
    }

EXO2_STMT_WITH(body, std::vector<StmtPtr>, body)
EXO2_STMT_WITH(orelse, std::vector<StmtPtr>, orelse)
EXO2_STMT_WITH(rhs, ExprPtr, rhs)
EXO2_STMT_WITH(cond, ExprPtr, cond)
EXO2_STMT_WITH(idx, std::vector<ExprPtr>, idx)
EXO2_STMT_WITH(dims, std::vector<ExprPtr>, dims)
EXO2_STMT_WITH(args, std::vector<ExprPtr>, args)
EXO2_STMT_WITH(name, std::string, name)
EXO2_STMT_WITH(iter, std::string, iter)
EXO2_STMT_WITH(mem, MemoryPtr, mem)
EXO2_STMT_WITH(callee, ProcPtr, callee)

#undef EXO2_STMT_WITH

StmtPtr
Stmt::with_bounds(ExprPtr lo, ExprPtr hi) const
{
    auto s = std::shared_ptr<Stmt>(new Stmt(*this));
    s->lo_ = std::move(lo);
    s->hi_ = std::move(hi);
    s->rehash();
    return s;
}

StmtPtr
Stmt::with_type(ScalarType t) const
{
    auto s = std::shared_ptr<Stmt>(new Stmt(*this));
    s->type_ = t;
    s->rehash();
    return s;
}

StmtPtr
Stmt::with_loop_mode(LoopMode mode) const
{
    auto s = std::shared_ptr<Stmt>(new Stmt(*this));
    s->loop_mode_ = mode;
    s->rehash();
    return s;
}

bool
stmt_equal(const StmtPtr& a, const StmtPtr& b)
{
    if (a == b)
        return true;
    if (!a || !b || a->structural_hash() != b->structural_hash() ||
        a->kind() != b->kind()) {
        return false;
    }
    switch (a->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        if (a->name() != b->name() || a->type() != b->type() ||
            a->idx().size() != b->idx().size()) {
            return false;
        }
        for (size_t i = 0; i < a->idx().size(); i++) {
            if (!expr_equal(a->idx()[i], b->idx()[i]))
                return false;
        }
        return expr_equal(a->rhs(), b->rhs());
      }
      case StmtKind::Alloc: {
        if (a->name() != b->name() || a->type() != b->type() ||
            a->mem() != b->mem() || a->dims().size() != b->dims().size()) {
            return false;
        }
        for (size_t i = 0; i < a->dims().size(); i++) {
            if (!expr_equal(a->dims()[i], b->dims()[i]))
                return false;
        }
        return true;
      }
      case StmtKind::For:
        return a->iter() == b->iter() &&
               a->loop_mode() == b->loop_mode() &&
               expr_equal(a->lo(), b->lo()) &&
               expr_equal(a->hi(), b->hi()) &&
               block_equal(a->body(), b->body());
      case StmtKind::If:
        return expr_equal(a->cond(), b->cond()) &&
               block_equal(a->body(), b->body()) &&
               block_equal(a->orelse(), b->orelse());
      case StmtKind::Pass:
        return true;
      case StmtKind::Call: {
        if (a->callee() != b->callee() || a->args().size() != b->args().size())
            return false;
        // Pattern-only calls (null callee) are named by the stmt itself;
        // compare the name so equality agrees with the structural hash.
        if (!a->callee() && a->name() != b->name())
            return false;
        for (size_t i = 0; i < a->args().size(); i++) {
            if (!expr_equal(a->args()[i], b->args()[i]))
                return false;
        }
        return true;
      }
      case StmtKind::WriteConfig:
        return a->name() == b->name() && a->field() == b->field() &&
               expr_equal(a->rhs(), b->rhs());
      case StmtKind::WindowDecl:
        return a->name() == b->name() && expr_equal(a->rhs(), b->rhs());
    }
    throw InternalError("unknown stmt kind");
}

bool
block_equal(const std::vector<StmtPtr>& a, const std::vector<StmtPtr>& b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++) {
        if (!stmt_equal(a[i], b[i]))
            return false;
    }
    return true;
}

uint64_t
block_hash(const std::vector<StmtPtr>& b)
{
    return hash_stmt_list(0xB10Cull, b);
}

StmtPtr
stmt_subst(const StmtPtr& s, const std::string& name, const ExprPtr& repl)
{
    // Each case returns `s` itself when nothing changed: interning
    // makes unchanged children pointer-identical, so plain vector ==
    // (elementwise shared_ptr compare) detects the no-op exactly,
    // preserving subtree identity and with it cached analysis results.
    if (!s)
        return s;
    // A binder with the same name shadows `name` below it.
    if (s->kind() == StmtKind::For && s->iter() == name) {
        ExprPtr lo = expr_subst(s->lo(), name, repl);
        ExprPtr hi = expr_subst(s->hi(), name, repl);
        if (lo == s->lo() && hi == s->hi())
            return s;
        return s->with_bounds(std::move(lo), std::move(hi));
    }
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        std::vector<ExprPtr> idx;
        idx.reserve(s->idx().size());
        for (const auto& e : s->idx())
            idx.push_back(expr_subst(e, name, repl));
        ExprPtr rhs = expr_subst(s->rhs(), name, repl);
        if (rhs == s->rhs() && idx == s->idx())
            return s;
        return s->with_idx(std::move(idx))->with_rhs(std::move(rhs));
      }
      case StmtKind::Alloc: {
        std::vector<ExprPtr> dims;
        dims.reserve(s->dims().size());
        for (const auto& e : s->dims())
            dims.push_back(expr_subst(e, name, repl));
        if (dims == s->dims())
            return s;
        return s->with_dims(std::move(dims));
      }
      case StmtKind::For: {
        ExprPtr lo = expr_subst(s->lo(), name, repl);
        ExprPtr hi = expr_subst(s->hi(), name, repl);
        std::vector<StmtPtr> body = block_subst(s->body(), name, repl);
        if (lo == s->lo() && hi == s->hi() && body == s->body())
            return s;
        return s->with_bounds(std::move(lo), std::move(hi))
                ->with_body(std::move(body));
      }
      case StmtKind::If: {
        ExprPtr cond = expr_subst(s->cond(), name, repl);
        std::vector<StmtPtr> body = block_subst(s->body(), name, repl);
        std::vector<StmtPtr> orelse = block_subst(s->orelse(), name, repl);
        if (cond == s->cond() && body == s->body() &&
            orelse == s->orelse()) {
            return s;
        }
        return s->with_cond(std::move(cond))
                ->with_body(std::move(body))
                ->with_orelse(std::move(orelse));
      }
      case StmtKind::Pass:
        return s;
      case StmtKind::Call: {
        std::vector<ExprPtr> args;
        args.reserve(s->args().size());
        for (const auto& e : s->args())
            args.push_back(expr_subst(e, name, repl));
        if (args == s->args())
            return s;
        return s->with_args(std::move(args));
      }
      case StmtKind::WriteConfig:
      case StmtKind::WindowDecl: {
        ExprPtr rhs = expr_subst(s->rhs(), name, repl);
        if (rhs == s->rhs())
            return s;
        return s->with_rhs(std::move(rhs));
      }
    }
    throw InternalError("unknown stmt kind");
}

std::vector<StmtPtr>
block_subst(const std::vector<StmtPtr>& b, const std::string& name,
            const ExprPtr& repl)
{
    std::vector<StmtPtr> out;
    out.reserve(b.size());
    bool shadowed = false;
    for (const auto& s : b) {
        // An Alloc/WindowDecl of the same name shadows `name` for the
        // rest of this list (a For binder is handled per-statement in
        // stmt_subst).
        out.push_back(shadowed ? s : stmt_subst(s, name, repl));
        if ((s->kind() == StmtKind::Alloc ||
             s->kind() == StmtKind::WindowDecl) &&
            s->name() == name) {
            shadowed = true;
        }
    }
    return out;
}

bool
stmt_uses(const StmtPtr& s, const std::string& name)
{
    if (!s)
        return false;
    if (s->name() == name &&
        (s->kind() == StmtKind::Assign || s->kind() == StmtKind::Reduce ||
         s->kind() == StmtKind::Alloc || s->kind() == StmtKind::WindowDecl)) {
        return true;
    }
    for (const auto& e : s->idx()) {
        if (expr_uses(e, name))
            return true;
    }
    for (const auto& e : s->dims()) {
        if (expr_uses(e, name))
            return true;
    }
    for (const auto& e : s->args()) {
        if (expr_uses(e, name))
            return true;
    }
    if (expr_uses(s->rhs(), name) || expr_uses(s->cond(), name) ||
        expr_uses(s->lo(), name) || expr_uses(s->hi(), name)) {
        return true;
    }
    for (const auto& c : s->body()) {
        if (stmt_uses(c, name))
            return true;
    }
    for (const auto& c : s->orelse()) {
        if (stmt_uses(c, name))
            return true;
    }
    return false;
}

}  // namespace exo2
