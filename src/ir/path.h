#ifndef EXO2_IR_PATH_H_
#define EXO2_IR_PATH_H_

/**
 * @file
 * Spatial coordinates of cursors (Section 5.2, "Implementation").
 *
 * A path describes navigation in the AST as a downward traversal: each
 * step is a label-index pair, where the index is -1 if the child is not
 * a list. A CursorLoc is a proc-independent location — the spatial half
 * of a Cursor; forwarding functions map CursorLocs to CursorLocs.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace exo2 {

/** Labels of AST children, for both statements and expressions. */
enum class PathLabel : uint8_t {
    Body,   ///< For/If body list (list)
    Orelse, ///< If else list (list)
    Cond,   ///< If condition (expr)
    Lo,     ///< For lower bound (expr)
    Hi,     ///< For upper bound (expr)
    Rhs,    ///< Assign/Reduce/WriteConfig/WindowDecl rhs (expr)
    Idx,    ///< Assign/Reduce LHS indices (list of exprs)
    Dim,    ///< Alloc dims (list of exprs)
    Arg,    ///< Call arguments (list of exprs)
    OpLhs,  ///< BinOp/USub left operand (expr)
    OpRhs,  ///< BinOp right operand (expr)
};

/** Printable label name ("body", "rhs", ...). */
std::string path_label_name(PathLabel l);

/** One downward step: (label, index); index is -1 for non-list children. */
struct PathStep
{
    PathLabel label;
    int index = -1;

    bool operator==(const PathStep& o) const
    {
        return label == o.label && index == o.index;
    }
};

using Path = std::vector<PathStep>;

/** What a cursor selects (Section 5.2): node, gap, or statement block. */
enum class CursorKind : uint8_t {
    Node,  ///< A single statement or expression.
    Gap,   ///< The gap before statement `index` of a list (index in 0..n).
    Block, ///< Statements [index, hi) of a list.
};

/**
 * A proc-independent cursor location: kind + path (+ block end).
 *
 * For Node cursors the last path step identifies the node. For Gap
 * cursors the last step's index is the gap position g (the gap sits
 * before statement g; g == n is the gap at the end). For Block cursors
 * the last step's index is the inclusive start and `hi` the exclusive
 * end of the selected range.
 */
struct CursorLoc
{
    CursorKind kind = CursorKind::Node;
    Path path;
    int hi = -1;  ///< Block end (exclusive); unused otherwise.

    bool operator==(const CursorLoc& o) const
    {
        return kind == o.kind && path == o.path && hi == o.hi;
    }

    /** Render as e.g. "body[1].body[0].rhs" for diagnostics. */
    std::string to_string() const;
};

/**
 * A forwarding function maps a location in procedure p to the
 * corresponding location in the rewritten procedure p'; nullopt means
 * the cursor was invalidated by the rewrite (Section 5.2).
 */
using ForwardFn =
    std::function<std::optional<CursorLoc>(const CursorLoc&)>;

}  // namespace exo2

#endif  // EXO2_IR_PATH_H_
