#include "src/ir/printer.h"

#include <cmath>
#include <sstream>

#include "src/ir/errors.h"

namespace exo2 {

namespace {

/** Operator precedence for minimal parenthesization. */
int
prec(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Or: return 1;
      case BinOpKind::And: return 2;
      case BinOpKind::Lt: case BinOpKind::Le: case BinOpKind::Gt:
      case BinOpKind::Ge: case BinOpKind::Eq: case BinOpKind::Ne:
        return 3;
      case BinOpKind::Add: case BinOpKind::Sub:
        return 4;
      case BinOpKind::Mul: case BinOpKind::Div: case BinOpKind::Mod:
        return 5;
    }
    return 0;
}

std::string
print_const(const Expr& e)
{
    std::ostringstream os;
    if (e.type() == ScalarType::Bool)
        return e.const_value() != 0.0 ? "True" : "False";
    double v = e.const_value();
    if (e.type() == ScalarType::Index || is_integer(e.type())) {
        os << static_cast<int64_t>(v);
    } else if (v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<int64_t>(v) << ".0";
    } else {
        os << v;
    }
    return os.str();
}

std::string print_expr_prec(const ExprPtr& e, int parent_prec);

std::string
print_idx_list(const std::vector<ExprPtr>& idx)
{
    std::ostringstream os;
    for (size_t i = 0; i < idx.size(); i++) {
        if (i)
            os << ", ";
        os << print_expr_prec(idx[i], 0);
    }
    return os.str();
}

std::string
print_expr_prec(const ExprPtr& e, int parent_prec)
{
    if (!e)
        return "<null>";
    switch (e->kind()) {
      case ExprKind::Const:
        return print_const(*e);
      case ExprKind::Read: {
        if (e->idx().empty())
            return e->name();
        return e->name() + "[" + print_idx_list(e->idx()) + "]";
      }
      case ExprKind::BinOp: {
        int p = prec(e->op());
        std::string s = print_expr_prec(e->lhs(), p) + " " +
                        binop_name(e->op()) + " " +
                        print_expr_prec(e->rhs(), p + 1);
        if (p < parent_prec)
            return "(" + s + ")";
        return s;
      }
      case ExprKind::USub: {
        std::string s = "-" + print_expr_prec(e->lhs(), 6);
        if (parent_prec > 5)
            return "(" + s + ")";
        return s;
      }
      case ExprKind::Window: {
        std::ostringstream os;
        os << e->name() << "[";
        const auto& dims = e->window_dims();
        for (size_t i = 0; i < dims.size(); i++) {
            if (i)
                os << ", ";
            os << print_expr_prec(dims[i].lo, 0);
            if (!dims[i].is_point())
                os << ":" << print_expr_prec(dims[i].hi, 0);
        }
        os << "]";
        return os.str();
      }
      case ExprKind::Stride: {
        std::ostringstream os;
        os << "stride(" << e->name() << ", " << e->stride_dim() << ")";
        return os.str();
      }
      case ExprKind::ReadConfig:
        return e->name() + "." + e->field();
      case ExprKind::Extern:
        return e->name() + "(" + print_idx_list(e->idx()) + ")";
    }
    throw InternalError("unknown expr kind");
}

std::string
indent_str(int indent)
{
    return std::string(4 * static_cast<size_t>(indent), ' ');
}

}  // namespace

std::string
print_expr(const ExprPtr& e)
{
    return print_expr_prec(e, 0);
}

std::string
print_stmt(const StmtPtr& s, int indent)
{
    std::ostringstream os;
    std::string pad = indent_str(indent);
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        os << pad << s->name();
        if (!s->idx().empty())
            os << "[" << print_idx_list(s->idx()) << "]";
        os << (s->kind() == StmtKind::Assign ? " = " : " += ");
        os << print_expr(s->rhs()) << "\n";
        break;
      }
      case StmtKind::Alloc: {
        os << pad << s->name() << ": " << type_name(s->type());
        if (!s->dims().empty())
            os << "[" << print_idx_list(s->dims()) << "]";
        os << " @ " << s->mem()->name() << "\n";
        break;
      }
      case StmtKind::For: {
        os << pad << "for " << s->iter() << " in "
           << (s->loop_mode() == LoopMode::Par ? "par" : "seq") << "("
           << print_expr(s->lo()) << ", " << print_expr(s->hi()) << "):\n";
        os << print_block(s->body(), indent + 1);
        break;
      }
      case StmtKind::If: {
        os << pad << "if " << print_expr(s->cond()) << ":\n";
        os << print_block(s->body(), indent + 1);
        if (!s->orelse().empty()) {
            os << pad << "else:\n";
            os << print_block(s->orelse(), indent + 1);
        }
        break;
      }
      case StmtKind::Pass:
        os << pad << "pass\n";
        break;
      case StmtKind::Call: {
        os << pad << (s->callee() ? s->callee()->name() : "<null>") << "("
           << print_idx_list(s->args()) << ")\n";
        break;
      }
      case StmtKind::WriteConfig: {
        os << pad << s->name() << "." << s->field() << " = "
           << print_expr(s->rhs()) << "\n";
        break;
      }
      case StmtKind::WindowDecl: {
        os << pad << s->name() << " = " << print_expr(s->rhs()) << "\n";
        break;
      }
    }
    return os.str();
}

std::string
print_block(const std::vector<StmtPtr>& block, int indent)
{
    std::ostringstream os;
    for (const auto& s : block)
        os << print_stmt(s, indent);
    return os.str();
}

std::string
print_proc(const ProcPtr& p)
{
    std::ostringstream os;
    os << "def " << p->name() << "(";
    const auto& args = p->args();
    for (size_t i = 0; i < args.size(); i++) {
        if (i)
            os << ", ";
        const auto& a = args[i];
        os << a.name << ": ";
        if (a.is_size) {
            os << "size";
        } else if (a.dims.empty()) {
            os << type_name(a.type);
        } else {
            if (a.is_window)
                os << "[" << type_name(a.type) << "]";
            else
                os << type_name(a.type);
            os << "[" << print_idx_list(a.dims) << "]";
            if (a.mem)
                os << " @ " << a.mem->name();
        }
    }
    os << "):\n";
    for (const auto& pred : p->preds())
        os << "    assert " << print_expr(pred) << "\n";
    if (p->body_stmts().empty())
        os << "    pass\n";
    else
        os << print_block(p->body_stmts(), 1);
    return os.str();
}

}  // namespace exo2
