/**
 * @file
 * The Halide reproduction (Section 6.3.2): apply the Figure 12 blur
 * schedule step by step, printing the object code after the key
 * actions — tiling, compute_at/store_at with recompute, and
 * vectorization.
 */

#include <cstdio>

#include "src/ir/printer.h"
#include "src/kernels/image.h"
#include "src/sched/halide.h"

using namespace exo2;
using namespace exo2::sched;

int
main()
{
    ProcPtr p = kernels::blur();
    std::printf("=== algorithm ===\n%s\n", print_proc(p).c_str());

    p = H_tile(p, "blur_y", "y", "x", "yi", "xi", 32, 256);
    std::printf("=== after blur_y.tile(y, x, yi, xi, 32, 256) ===\n%s\n",
                print_proc(p).c_str());

    p = H_compute_store_at(p, "blur_x", "blur_y", "x");
    std::printf(
        "=== after blur_x.compute_at(blur_y, x) + store_at ===\n%s\n",
        print_proc(p).c_str());

    p = H_parallel(p, "y");
    p = H_vectorize(p, "blur_x", "xi", machine_avx512());
    p = H_vectorize(p, "blur_y", "xi", machine_avx512());
    p = H_store_in(p, "blur_x", mem_dram_stack());
    p = cleanup(p);
    std::printf("=== final (parallel + vectorized, Figure 12) ===\n%s\n",
                print_proc(p).c_str());
    return 0;
}
