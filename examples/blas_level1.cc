/**
 * @file
 * BLAS level-1 example (Section 6.2.1): optimize axpy with the shared
 * `optimize_level_1` operator, validate against the reference
 * interpreter, and compare simulated cycles against the naive loop.
 */

#include <algorithm>
#include <cstdio>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/machine/cost_sim.h"
#include "src/sched/blas.h"

using namespace exo2;

int
main()
{
    const auto& k = kernels::find_kernel("saxpy");
    ProcPtr opt = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 4);
    std::printf("=== optimized saxpy (AVX2) ===\n%s\n",
                print_proc(opt).c_str());

    // Run both on real data through the interpreter.
    const int64_t n = 1000;
    Buffer x(ScalarType::F32, {n});
    Buffer y0(ScalarType::F32, {n});
    Buffer y1(ScalarType::F32, {n});
    x.fill_random(1);
    y0.fill_random(2);
    y1.fill_random(2);
    interp_run(k.proc, {RunArg::make_size(n), RunArg::make_scalar(0.5),
                        RunArg::make_buffer(&x), RunArg::make_buffer(&y0)});
    interp_run(opt, {RunArg::make_size(n), RunArg::make_scalar(0.5),
                     RunArg::make_buffer(&x), RunArg::make_buffer(&y1)});
    double max_err = 0;
    for (int64_t i = 0; i < n; i++) {
        double e = y0.at(i) - y1.at(i);
        max_err = std::max(max_err, e < 0 ? -e : e);
    }
    std::printf("max |naive - optimized| over %lld elements: %g\n",
                static_cast<long long>(n), max_err);

    for (int64_t sz : {64, 4096, 262144}) {
        double naive = simulate_cost_named(k.proc, {{"n", sz}}).cycles;
        double fast = simulate_cost_named(opt, {{"n", sz}}).cycles;
        std::printf("n=%-8lld  naive %12.0f cycles   optimized %12.0f "
                    "cycles   speedup %.2fx\n",
                    static_cast<long long>(sz), naive, fast,
                    naive / fast);
    }
    return 0;
}
