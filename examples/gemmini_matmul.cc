/**
 * @file
 * The Gemmini walk-through (Section 6.1.2, Appendix B): schedule the
 * quantized matmul onto the accelerator model and show the effect of
 * configuration hoisting — the Figure 5c combinator program — on the
 * simulated cycle count.
 */

#include <cstdio>

#include "src/ir/printer.h"
#include "src/machine/cost_sim.h"
#include "src/sched/gemmini_lib.h"

using namespace exo2;
using namespace exo2::sched;

int
main()
{
    ProcPtr base = gemmini_matmul_kernel();
    std::printf("=== object code ===\n%s\n", print_proc(base).c_str());

    GemminiScheduleOpts no_hoist;
    no_hoist.hoist_configs = false;
    ProcPtr naive = schedule_gemmini_matmul(base, no_hoist);
    ProcPtr hoisted = schedule_gemmini_matmul(base);

    std::printf("=== scheduled (configs hoisted) ===\n%s\n",
                print_proc(hoisted).c_str());

    CostConfig cfg;
    cfg.host_penalty = 8.0;
    for (int64_t sz : {64, 256}) {
        auto a = simulate_cost_named(naive, {{"N", sz}, {"M", sz}}, cfg);
        auto b = simulate_cost_named(hoisted, {{"N", sz}, {"M", sz}}, cfg);
        std::printf(
            "%lldx%lldx512: naive %.0f cycles (%lld config writes) -> "
            "hoisted %.0f cycles (%lld config writes), %.2fx\n",
            static_cast<long long>(sz), static_cast<long long>(sz),
            a.cycles, static_cast<long long>(a.config_writes), b.cycles,
            static_cast<long long>(b.config_writes),
            a.cycles / b.cycles);
    }
    return 0;
}
