/**
 * @file
 * SGEMM on AVX512 (Section 6.2.3, Appendix C): generate the
 * register-tiled micro-kernel with `schedule_sgemm` and emit its C.
 */

#include <cstdio>

#include "src/codegen/c_codegen.h"
#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/machine/cost_sim.h"
#include "src/sched/gemm.h"

using namespace exo2;
using namespace exo2::sched;

int
main()
{
    const Machine& m = machine_avx512();
    ProcPtr base = sgemm_with_asserts(kernels::sgemm(), m);
    ProcPtr s = schedule_sgemm(base, m);
    std::printf("=== scheduled SGEMM (micro-kernel unrolled) ===\n%s\n",
                print_proc(s).c_str());
    std::printf("=== generated C ===\n%s\n", codegen_c(s).c_str());

    for (int64_t sz : {64, 128}) {
        double naive = simulate_cost_named(
            base, {{"M", sz}, {"N", sz}, {"K", sz}}).cycles;
        double fast = simulate_cost_named(
            s, {{"M", sz}, {"N", sz}, {"K", sz}}).cycles;
        std::printf("%lld^3: naive %.0f -> scheduled %.0f cycles "
                    "(%.1fx)\n",
                    static_cast<long long>(sz), naive, fast,
                    naive / fast);
    }
    return 0;
}
