/**
 * @file
 * Quickstart: the paper's Section 2/3 walk-through in this library.
 *
 *  1. Parse the gemv object code.
 *  2. Refer to loops with cursors (`find_loop` / `find`).
 *  3. Build a reusable user-level scheduling function (`tile2D`) from
 *     the divide_loop and lift_scope primitives.
 *  4. Print the scheduled object code and its generated C.
 */

#include <cstdio>

#include "src/codegen/c_codegen.h"
#include "src/frontend/parser.h"
#include "src/ir/printer.h"
#include "src/primitives/primitives.h"

using namespace exo2;

/** Section 3.2: tiling as an ordinary user function, not a built-in. */
static ProcPtr
tile2D(ProcPtr p, const std::string& i_lp, const std::string& j_lp,
       const std::vector<std::string>& i_itrs,
       const std::vector<std::string>& j_itrs, int i_sz, int j_sz)
{
    p = divide_loop(p, i_lp, i_sz, i_itrs, TailStrategy::Perfect);
    p = divide_loop(p, j_lp, j_sz, j_itrs, TailStrategy::Perfect);
    p = lift_scope(p, j_itrs[0]);
    return p;
}

int
main()
{
    ProcPtr g = parse_proc(R"(
def gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    assert M % 8 == 0
    assert N % 8 == 0
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]
)");
    std::printf("=== original ===\n%s\n", print_proc(g).c_str());

    // Cursors: name-based and pattern-based references agree (Sec. 2).
    Cursor cur0 = g->find_loop("i");
    Cursor cur1 = g->find("for i in _: _");
    std::printf("cursors agree: %s\n\n",
                cur0 == cur1 ? "true" : "false");

    ProcPtr tiled = tile2D(g, "i", "j", {"io", "ii"}, {"jo", "ji"}, 8, 8);
    std::printf("=== tiled (tile2D, a user-level operator) ===\n%s\n",
                print_proc(tiled).c_str());

    // Stable references: the reduction cursor survives the schedule.
    Cursor red = g->find("y[_] += _");
    Cursor red_now = tiled->forward(red);
    std::printf("forwarded reduction now reads: %s\n",
                print_stmt(red_now.stmt()).c_str());

    std::printf("=== generated C ===\n%s\n",
                codegen_c(tiled).c_str());
    return 0;
}
