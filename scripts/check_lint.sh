#!/usr/bin/env bash
# Lint soundness gate, ctest-invocable (see CMakeLists
# EXO2_ENABLE_LINT): the static analyzer's full acceptance sweep.
#
#   1. exo2lint --all over every registry kernel plus the demo
#      kernels: zero Error-level findings, and the run must prove at
#      least one kernel safe (a sweep that discharges nothing is
#      vacuous and fails).
#   2. test_lint with an enlarged fuzz budget (EXO2_LINT_FUZZ_SEEDS,
#      default 40 -> the tri-oracle campaign's 212-schedule corpus):
#      every fuzzed schedule lints Error-free, and a proven-safe
#      verdict contradicted by a real crash fails the run with a
#      ddmin repro (FuzzResult::Status::LintUnsound).
#
# Usage: scripts/check_lint.sh <test_lint binary> <exo2lint binary> [seeds]
set -euo pipefail

test_lint="${1:?usage: check_lint.sh <test_lint> <exo2lint> [seeds]}"
exo2lint="${2:?usage: check_lint.sh <test_lint> <exo2lint> [seeds]}"
seeds="${3:-40}"

# The fuzz sweep's tri-oracle JITs through $CC (default cc); pin it so
# the gate exercises the same toolchain as the rest of CI.
: "${CC:=cc}"
export CC

echo "=== exo2lint --all (registry + demo kernels) ==="
out="$("$exo2lint" --all)"
echo "$out"

# Anti-vacuity: the sweep must have linted kernels and proven some
# safe. `exo2lint --all` already exits nonzero on any Error finding.
linted=$(grep -c 'obligations proven' <<<"$out" || true)
safe=$(grep -c 'proven safe' <<<"$out" || true)
if [ "$linted" -lt 10 ]; then
    echo "check_lint: vacuous sweep: only $linted kernels linted" >&2
    exit 1
fi
if [ "$safe" -lt 1 ]; then
    echo "check_lint: vacuous sweep: no kernel proven safe" >&2
    exit 1
fi
echo "check_lint: $linted kernels linted, $safe proven safe"

echo "=== test_lint (fuzz corpus budget: $seeds seeds/kernel) ==="
EXO2_LINT_FUZZ_SEEDS="$seeds" exec "$test_lint"
