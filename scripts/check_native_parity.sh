#!/usr/bin/env bash
# Native-intrinsics parity gate: rerun the tri-oracle sweep (all L1+L2
# kernels, register-tiled SGEMM, Halide blur/unsharp, the fuzz
# regressions) and the directed native tests with intrinsics codegen
# enabled, so the compiled-C oracle executes real AVX2/AVX-512 code
# against the interpreter. Wired as the opt-in `native_parity` ctest
# when EXO2_ENABLE_NATIVE_PARITY=ON; also runnable standalone:
#
#   scripts/check_native_parity.sh <test_verify binary> <test_native binary>
#
# Skips cleanly (exit 0) on machines whose CPU has no AVX2.
set -euo pipefail

bin_verify="${1:?usage: check_native_parity.sh <test_verify> <test_native>}"
bin_native="${2:?usage: check_native_parity.sh <test_verify> <test_native>}"

# The in-process JIT honors $CC; pin it so the parity run reports the
# toolchain it actually tested.
: "${CC:=cc}"
export CC

# The JIT's AVX2 mode requires FMA too (cjit_cpu_supports), so gate on
# both flags — an avx2-without-fma CPU must skip, not fail.
if ! grep -qw avx2 /proc/cpuinfo 2>/dev/null ||
   ! grep -qw fma /proc/cpuinfo 2>/dev/null; then
    echo "native_parity: CPU has no AVX2+FMA; skipping" >&2
    exit 0
fi
isa=avx2
if grep -qw avx512f /proc/cpuinfo 2>/dev/null; then
    isa=avx512
fi
export EXO2_NATIVE_ISA="$isa"
echo "native_parity: EXO2_NATIVE_ISA=$isa, CC=$CC" >&2

"$bin_verify"
"$bin_native"
