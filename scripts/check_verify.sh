#!/usr/bin/env bash
# Differential-verification gate: build the tri-oracle test binary under
# ASan+UBSan and run the schedule fuzzer with a fixed (larger) seed
# budget. Wired as the opt-in `verify_fuzz` ctest when
# EXO2_ENABLE_VERIFY_FUZZ=ON; also runnable standalone:
#
#   scripts/check_verify.sh [seeds-per-kernel]
#
# Exit code 0 means: zero divergences across the budget, no sanitizer
# findings. Any fuzz failure prints a reproducible (kernel, seed,
# minimized step chain) triple — see DESIGN.md §4 for how to replay it.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
seeds="${1:-120}"
build_dir="${EXO2_VERIFY_BUILD_DIR:-$repo_root/build-asan}"

# One toolchain for everything: the CXX that builds the test binary is
# passed to cmake explicitly, and CC is exported so the in-process JIT
# (src/verify/cjit.cc honors $CC, default cc) compiles the generated
# kernels with the same toolchain CI selected rather than silently
# testing a different compiler.
: "${CC:=cc}"
: "${CXX:=c++}"
export CC CXX

mkdir -p "$build_dir"
cmake -S "$repo_root" -B "$build_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="$CXX" \
    -DEXO2_BUILD_BENCH=OFF \
    -DEXO2_BUILD_EXAMPLES=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    > "$build_dir/configure.log" 2>&1 || {
        cat "$build_dir/configure.log"; exit 1; }
cmake --build "$build_dir" --target test_verify -j "$(nproc)"

# dlopen'd JIT kernels are plain (uninstrumented) C; tell ASan not to
# complain about the unknown module and keep ODR checking strict.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export EXO2_VERIFY_FUZZ_SEEDS="$seeds"
exec "$build_dir/test_verify"
