#!/usr/bin/env bash
# Autotune smoke check, ctest-invocable (see CMakeLists
# EXO2_ENABLE_AUTOTUNE): tune one small kernel end-to-end — beam
# search, JIT-measured re-rank, tri-oracle validation, script replay —
# and fail unless the winner beats the naive cost, validates, and
# replays bit-for-bit. This is `bench_autotune --smoke`; the full
# five-kernel comparison against the hand-written sched/ library is
# `bench_autotune` (see bench/README.md).
#
# Usage: scripts/check_autotune.sh <bench_autotune binary>
set -euo pipefail

bench="${1:?usage: check_autotune.sh <bench_autotune binary>}"

# The tuner JIT-compiles candidates in-process (src/verify/cjit.cc
# honors $CC, default cc); pin and export it so the smoke check
# exercises the same toolchain as the rest of CI.
: "${CC:=cc}"
export CC

"$bench" --smoke
echo "autotune smoke OK"
