#!/usr/bin/env bash
# Fault-injection gate, ctest-invocable (see CMakeLists
# EXO2_ENABLE_FAULTS): first the sandbox unit tests, then the
# five-kernel autotune driven to completion under every injected fault
# class in turn — failing compilers, hanging compilers, dlopen
# failures, native-ISA compile failures, crashing kernels (SIGSEGV /
# SIGFPE), and never-terminating kernels. Each pass must end with a
# tri-oracle-validated, bit-for-bit replayable winner per kernel AND a
# non-zero injected-fault count (bench_autotune --faults fails on a
# vacuous run itself), so the gate proves the driver degrades instead
# of dying.
#
# Usage: scripts/check_faults.sh <test_sandbox binary> <bench_autotune binary>
set -euo pipefail

test_sandbox="${1:?usage: check_faults.sh <test_sandbox> <bench_autotune>}"
bench="${2:?usage: check_faults.sh <test_sandbox> <bench_autotune>}"

# The JIT honors $CC (default cc); pin and export it so the gate
# exercises the same toolchain as the rest of CI.
: "${CC:=cc}"
export CC

echo "=== sandbox unit tests ==="
"$test_sandbox"

# One fault class per pass: high enough probability that faults fire
# throughout the search, low enough that some candidate always builds.
# The seed makes every pass replayable.
specs=(
    "compile_fail=0.4"
    "compile_slow=0.6,slow_seconds=30"
    "dlopen_fail=0.4"
    "isa_fail=0.5"
    "sigsegv=0.4"
    "sigfpe=0.4"
    "hang=0.3"
)

for spec in "${specs[@]}"; do
    echo "=== fault pass: $spec ==="
    # Tight compile timeout so injected slow compiles cost 2 s, not 30;
    # tight watchdog so injected hangs cost 1 s, not 10.
    EXO2_FAULTS="seed=11,$spec" \
    EXO2_CJIT_TIMEOUT=2 \
    EXO2_SANDBOX_WALL=1 \
        "$bench" --faults
done

echo "fault-injection gate OK"
