#!/usr/bin/env bash
# Perf smoke check, ctest-invocable (see CMakeLists EXO2_ENABLE_PERF_SMOKE):
# run the long-schedule benchmark once and fail if BM_LongSchedule/800 is
# more than 2x slower than the accelerated baseline recorded in
# BENCH_schedule_time.json.
#
# Usage: scripts/check_perf_smoke.sh <bench_schedule_time binary> [traj.json]
set -euo pipefail

bench="${1:?usage: check_perf_smoke.sh <bench_schedule_time binary> [traj.json]}"

# The benchmark binaries JIT-compile generated kernels in-process
# (src/verify/cjit.cc honors $CC, default cc); pin and export it so the
# smoke check exercises the same toolchain as the rest of CI.
: "${CC:=cc}"
export CC
traj="${2:-$(cd "$(dirname "$0")/.." && pwd)/BENCH_schedule_time.json}"
raw=$(mktemp /tmp/exo2_perf_smoke.XXXXXX.json)
trap 'rm -f "$raw"' EXIT

"$bench" --benchmark_filter='^BM_LongSchedule/800$' \
    --benchmark_out="$raw" --benchmark_out_format=json >&2

python3 - "$raw" "$traj" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
traj = json.load(open(sys.argv[2]))

NAME = "BM_LongSchedule/800"
cur = next((b["real_time"] for b in raw["benchmarks"]
            if b["name"] == NAME
            and b.get("run_type", "iteration") == "iteration"), None)
if cur is None:
    sys.exit(f"{NAME} missing from benchmark output {sys.argv[1]}")

# Baseline: the latest recorded entry for the accelerated configuration
# (pre-PR "pre-baseline" entries measure the naive paths and are not a
# regression reference).
base = None
for e in traj["entries"]:
    if "pre-baseline" in e["label"]:
        continue
    t = e["benchmarks"].get(NAME)
    if t:
        base = (e["label"], t["real_time_ms"])

if base is None:
    sys.exit(f"no accelerated baseline for {NAME} in {sys.argv[2]}")

label, base_ms = base
print(f"{NAME}: current {cur:.2f} ms, baseline {base_ms:.2f} ms "
      f"('{label}')")
if cur > 2.0 * base_ms:
    sys.exit(f"PERF REGRESSION: {cur:.2f} ms is more than 2x the "
             f"recorded baseline {base_ms:.2f} ms")
print("perf smoke OK")
EOF
