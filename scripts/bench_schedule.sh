#!/usr/bin/env bash
# Build Release, run the scheduling-time benchmarks, and append an entry
# to the BENCH_schedule_time.json trajectory at the repo root.
#
# Usage: scripts/bench_schedule.sh [label]
#   label defaults to the abbreviated git HEAD. Extra benchmark flags can
#   be passed via EXO2_BENCH_FLAGS (e.g. --benchmark_filter=Sgemm).
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
build_dir=build-bench
raw_out=$(mktemp /tmp/exo2_bench_raw.XXXXXX.json)
trap 'rm -f "$raw_out"' EXIT

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
    -DEXO2_BUILD_TESTS=OFF -DEXO2_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j"$(nproc)" --target bench_schedule_time

EXO2_BENCH_OUT="$raw_out" "./$build_dir/bench_schedule_time" \
    --benchmark_min_time=1 ${EXO2_BENCH_FLAGS:-}

python3 - "$label" "$raw_out" BENCH_schedule_time.json <<'EOF'
import json, os, sys, datetime

label, raw_path, traj_path = sys.argv[1], sys.argv[2], sys.argv[3]
raw = json.load(open(raw_path))

entry = {
    "label": label,
    "date": datetime.date.today().isoformat(),
    "benchmarks": {
        b["name"]: {"real_time_ms": round(b["real_time"], 4)}
        for b in raw["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    },
}

try:
    traj = json.load(open(traj_path))
except FileNotFoundError:
    traj = {"description": "Scheduling-time benchmark trajectory; one "
                           "entry per measured revision (ms, real time).",
            "entries": []}

traj["entries"] = [e for e in traj["entries"] if e["label"] != label]
traj["entries"].append(entry)
# Atomic replace: a crash mid-dump must not truncate the trajectory.
tmp_path = f"{traj_path}.tmp.{os.getpid()}"
with open(tmp_path, "w") as f:
    json.dump(traj, f, indent=2)
    f.flush()
    os.fsync(f.fileno())
os.replace(tmp_path, traj_path)
print(f"appended '{label}' to {traj_path}")
EOF
