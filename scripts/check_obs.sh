#!/usr/bin/env bash
# Observability gate, ctest-invocable (see CMakeLists EXO2_ENABLE_OBS):
# first the tracer/metrics/daemon-telemetry unit tests, then
# `exo2trace --overhead` — a deterministic proof that tracing costs
# nothing when it is off. The overhead pass runs a real autotune
# workload twice: once untraced for a wall-clock baseline, once traced
# to count captured spans (>= 1000 required, so the bound cannot pass
# vacuously on an uninstrumented build), then prices the disabled
# EXO2_SPAN fast path with a tight probe loop and asserts
# per-span-cost x span-count < 2% of the untraced wall clock. A unit
# cost times a real span census is stable where an A/B wall-clock diff
# of two noisy runs is not.
#
# Usage: scripts/check_obs.sh <test_obs> <exo2trace>
set -euo pipefail

test_obs="${1:?usage: check_obs.sh <test_obs> <exo2trace>}"
exo2trace="${2:?usage: check_obs.sh <test_obs> <exo2trace>}"

# The traced workload must not inherit a tracing or cache environment
# from the CI job: the gate times the *disabled* path.
unset EXO2_TRACE EXO2_TRACE_RING EXO2_CACHE_DIR EXO2_TUNE_DEADLINE

echo "=== obs unit tests ==="
"$test_obs"

echo "=== tracing-off overhead gate ==="
"$exo2trace" --overhead

echo "obs gate OK"
