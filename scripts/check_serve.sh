#!/usr/bin/env bash
# Crash-safe-service gate, ctest-invocable (see CMakeLists
# EXO2_ENABLE_SERVE): first the persistent-cache and daemon unit tests,
# then bench_serve --faults — a forked daemon hammered by concurrent
# clients under each injected fault class in turn (corrupted and stale
# cache entries, a saturated admission queue, failing/crashing JIT
# builds), each round ending with a kill -9 of the daemon mid-run, a
# restart, and clients retrying through the outage. A pass means zero
# failed requests — backpressure REJECTED (retried) and flagged
# `degraded` answers are the only permitted non-ok outcomes — AND a
# non-zero injected-fault count (bench_serve --faults fails on a
# vacuous run itself), so the gate proves the service heals instead of
# dying.
#
# Usage: scripts/check_serve.sh <test_cache> <test_serve> <bench_serve>
set -euo pipefail

test_cache="${1:?usage: check_serve.sh <test_cache> <test_serve> <bench_serve>}"
test_serve="${2:?usage: check_serve.sh <test_cache> <test_serve> <bench_serve>}"
bench="${3:?usage: check_serve.sh <test_cache> <test_serve> <bench_serve>}"

# The JIT honors $CC (default cc); pin and export it so the gate
# exercises the same toolchain as the rest of CI.
: "${CC:=cc}"
export CC

echo "=== cache unit tests ==="
"$test_cache"

echo "=== daemon unit tests ==="
"$test_serve"

# One fault class per pass: high enough probability that faults fire
# throughout the run, low enough that retries always converge. The
# seed makes every pass replayable. Every pass also includes the
# kill -9/restart round (see bench_serve --faults).
specs=(
    "cache_corrupt=0.6"
    "cache_stale=0.6"
    "queue_full=0.3"
    "compile_fail=0.2,dlopen_fail=0.2"
    "cache_corrupt=0.3,cache_stale=0.3,queue_full=0.2"
)

for spec in "${specs[@]}"; do
    echo "=== serve fault pass: $spec ==="
    EXO2_FAULTS="seed=23,$spec" \
    EXO2_CJIT_TIMEOUT=5 \
        "$bench" --faults
done

echo "serve gate OK"
