/**
 * @file
 * Figure 8: skinny-matrix gemv/ger — the Exo 2 register-staged schedule
 * (opt_skinny, N = 40 fixed) against the reference models' general
 * schedules, over M buckets. The paper's shape: 2-3x wins at small M
 * (the staged vector stays in registers), parity at large M. Also
 * doubles as the skinny-specialization ablation (DESIGN.md #4): the
 * general Exo 2 schedule is reported alongside.
 */

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/primitives/primitives.h"

using namespace exo2;
using baselines::RefLib;

int
main()
{
    std::printf("Figure 8: skinny gemv/ger (N = 40, AVX2)\n");
    const Machine& m = machine_avx2();
    std::vector<int64_t> ms{1, 10, 100, 1000, 10000};
    std::vector<std::string> cols{"10^0", "10^1", "10^2", "10^3", "10^4"};
    std::vector<std::string> kernels_list{"dgemv_n", "sgemv_n", "dgemv_t",
                                          "sgemv_t", "dger", "sger"};
    for (RefLib lib : {RefLib::MKL, RefLib::OpenBLAS, RefLib::BLIS}) {
        std::vector<std::string> rows;
        std::vector<std::vector<double>> cells;
        for (const auto& name : kernels_list) {
            const auto& k = kernels::find_kernel(name);
            ProcPtr ours;
            try {
                ours = baselines::scheduled_skinny(k, m, 40);
            } catch (const std::exception& e) {
                std::printf("  (skipping %s: %s)\n", name.c_str(),
                            e.what());
                continue;
            }
            ProcPtr ref = baselines::scheduled_level2(k, m, lib);
            std::vector<double> row;
            for (int64_t mm : ms) {
                double a = bench::cycles(ref, {{"M", mm}, {"N", 40}},
                                         baselines::cost_config_for(lib));
                double b = bench::cycles(
                    ours, {{"M", mm}},
                    baselines::cost_config_for(RefLib::Exo2));
                row.push_back(b > 0 ? a / b : 1.0);
            }
            rows.push_back(name);
            cells.push_back(std::move(row));
        }
        bench::print_heatmap("Runtime of " + baselines::ref_lib_name(lib) +
                                 " / Exo 2 skinny (AVX2)",
                             rows, cols, cells);
    }

    // Ablation: the skinny specialization vs Exo 2's own general path.
    {
        std::vector<std::string> rows;
        std::vector<std::vector<double>> cells;
        for (const auto& name : kernels_list) {
            const auto& k = kernels::find_kernel(name);
            ProcPtr skinny;
            try {
                skinny = baselines::scheduled_skinny(k, m, 40);
            } catch (const std::exception&) {
                continue;
            }
            ProcPtr general =
                baselines::scheduled_level2(k, m, RefLib::Exo2);
            std::vector<double> row;
            for (int64_t mm : ms) {
                double a = bench::cycles(general, {{"M", mm}, {"N", 40}});
                double b = bench::cycles(skinny, {{"M", mm}});
                row.push_back(b > 0 ? a / b : 1.0);
            }
            rows.push_back(name);
            cells.push_back(std::move(row));
        }
        bench::print_heatmap(
            "Ablation: Exo 2 general schedule / Exo 2 skinny schedule",
            rows, cols, cells);
    }
    return 0;
}
