/**
 * @file
 * Autotuner benchmark (DESIGN.md §6): tune each representative kernel
 * from its *naive* definition — no hand-written schedule — and compare
 * the winner's wall-clock GFLOP/s against the hand-scheduled `sched/`
 * library version of the same kernel. Results go to
 * BENCH_autotune.json; the acceptance bar is >= 80% of hand-scheduled
 * performance on at least 3 of the 5 kernels, with every winner
 * tri-oracle-clean and bit-for-bit replayable from its emitted script.
 *
 * Usage: bench_autotune [output.json]
 *        bench_autotune --smoke   (one small kernel end-to-end, for
 *                                  scripts/check_autotune.sh)
 *        bench_autotune --faults  (tune all five kernels with reduced
 *                                  budgets under the EXO2_FAULTS
 *                                  injection spec; exits 0 iff every
 *                                  tune returns a validated, replayable
 *                                  winner and faults actually fired —
 *                                  for scripts/check_faults.sh)
 *
 * The JIT honours EXO2_NATIVE_ISA; this benchmark sets it to "auto"
 * (unless already set) so both the tuner's measured refinement and the
 * final comparison run with native SIMD codegen where the CPU allows.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/frontend/parser.h"
#include "src/obs/phase.h"
#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/machine/machine.h"
#include "src/sched/blas.h"
#include "src/sched/gemm.h"
#include "src/sched/halide.h"
#include "src/tune/tune.h"
#include "src/verify/verify.h"

#include "bench/bench_util.h"

namespace {

using namespace exo2;
using verify::CompiledProc;
using verify::OracleInputs;
using verify::SizeEnv;

struct Case
{
    std::string name;
    ProcPtr naive;
    ProcPtr hand;          ///< sched/ library schedule of the same kernel
    SizeEnv bench_sizes;   ///< measurement sizes
    tune::TuneOpts opts;
    double flops = 0;      ///< useful floating-point ops per call
};

using bench::env_str;
using bench::json_escape;

/** GFLOP/s of one build (CompiledProc::time_per_call calibrates an
 *  iteration count targeting ~150 ms of kernel time). */
double
measure_gflops(const ProcPtr& p, const SizeEnv& env, double flops)
{
    CompiledProc cp(p);
    OracleInputs in = verify::make_inputs(p, env, 4242);
    for (auto& a : in.args) {
        if (a.kind == RunArg::Kind::Scalar)
            a.scalar = 1.0;  // keep iterated kernels out of denormals
    }
    return flops / std::max(cp.time_per_call(in.args), 1e-12) / 1e9;
}

/** One schedule script as a single line. */
std::string
script_line(const std::vector<tune::FuzzStep>& script)
{
    std::string s;
    for (const auto& st : script)
        s += (s.empty() ? "" : "; ") + verify::step_to_string(st);
    return s;
}

std::vector<Case>
build_cases(const Machine& m)
{
    std::vector<Case> cases;
    const int64_t n = 1 << 16;

    for (const char* name : {"saxpy", "sdot"}) {
        const auto& k = kernels::find_kernel(name);
        Case c;
        c.name = name;
        c.naive = k.proc;
        c.hand = sched::optimize_level_1(
            k.proc, k.proc->find_loop(k.main_loop), k.prec, m, 2);
        c.bench_sizes = {{"n", n}};
        c.flops = 2.0 * static_cast<double>(n);
        c.opts.tune_sizes = {{"n", 2048}};
        cases.push_back(c);
    }
    {
        const auto& k = kernels::find_kernel("sgemv_n");
        Case c;
        c.name = "sgemv_n";
        c.naive = k.proc;
        c.hand = sched::optimize_level_2_general(
            k.proc, k.proc->find_loop(k.main_loop), k.prec, m, 4, 2);
        c.bench_sizes = {{"M", 512}, {"N", 512}};
        c.flops = 2.0 * 512.0 * 512.0;
        c.opts.tune_sizes = {{"M", 96}, {"N", 96}};
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "sgemm";
        c.naive = kernels::sgemm();
        ProcPtr asserted = sched::sgemm_with_asserts(c.naive, m);
        c.hand = sched::schedule_sgemm(asserted, m);
        c.bench_sizes = {{"M", 192}, {"N", 192}, {"K", 192}};
        c.flops = 2.0 * 192.0 * 192.0 * 192.0;
        c.opts.tune_sizes = {{"M", 48}, {"N", 48}, {"K", 48}};
        c.opts.max_rounds = 6;
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "blur";
        c.naive = kernels::blur();
        c.hand = sched::schedule_blur_like_halide(c.naive, m);
        int64_t H = 64, W = 512;
        c.bench_sizes = {{"H", H}, {"W", W}};
        c.flops = 3.0 * static_cast<double>((H + 2) * W + H * W);
        c.opts.tune_sizes = {{"H", 32}, {"W", 256}};
        cases.push_back(c);
    }
    return cases;
}

}  // namespace

namespace {

/** --faults: drive the full five-kernel tune under the EXO2_FAULTS
 *  injection spec with small search budgets. Passing means every tune
 *  *completed* with a tri-oracle-validated, bit-for-bit replayable
 *  winner while faults were genuinely being injected — the driver
 *  process surviving to print the summary is the point. */
int
run_fault_mode(const Machine& m)
{
    using verify::fault_injection_counts;

    verify::FaultSpec spec = verify::current_fault_spec();
    if (!spec.any()) {
        std::cerr << "bench_autotune --faults: EXO2_FAULTS is not set "
                     "or injects nothing; refusing to pass vacuously\n";
        return 2;
    }
    verify::reset_fault_injection_counts();
    std::cerr << "bench_autotune --faults: spec "
              << verify::fault_spec_to_string(spec) << "\n";

    int failures = 0;
    for (Case& c : build_cases(m)) {
        c.opts.beam_width = 2;
        c.opts.max_rounds = 3;
        c.opts.random_restarts = 0;
        c.opts.jit_topk = 2;
        tune::TuneResult r = tune::autotune(c.naive, m, c.opts);
        bool replay_ok =
            proc_digest(tune::replay_script(c.naive, r.script)) ==
            proc_digest(r.best);
        std::cerr << "  " << c.name << ": completed, validated="
                  << r.validated << ", replay_ok=" << replay_ok
                  << ", jit_faults=" << r.stats.jit_faults
                  << ", validate_rejects=" << r.stats.validate_rejects
                  << "\n";
        if (!r.validated || !replay_ok || !r.best)
            failures++;
    }

    verify::FaultInjectionCounts fc = fault_injection_counts();
    std::cerr << "bench_autotune --faults: injected "
              << fc.total() << " faults (compile_fail=" << fc.compile_fail
              << " compile_slow=" << fc.compile_slow
              << " dlopen_fail=" << fc.dlopen_fail
              << " isa_fail=" << fc.isa_fail
              << " sigsegv=" << fc.sigsegv << " sigfpe=" << fc.sigfpe
              << " sigill=" << fc.sigill << " hang=" << fc.hang
              << "), " << failures << " kernels without a validated "
              << "replayable winner\n";
    if (fc.total() == 0) {
        std::cerr << "bench_autotune --faults: no fault fired; the gate "
                     "would be vacuous — failing\n";
        return 2;
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    bool faults = argc > 1 && std::string(argv[1]) == "--faults";
    std::string out_path = "BENCH_autotune.json";
    if (argc > 1 && !smoke && !faults)
        out_path = argv[1];

    // Native codegen wherever the CPU allows; the tuner's JIT re-rank
    // and the final measurement then see the same instruction lowering.
    setenv("EXO2_NATIVE_ISA", "auto", /*overwrite=*/0);

    const Machine& m = machine_avx2();

    if (faults)
        return run_fault_mode(m);

    if (smoke) {
        // One small kernel end-to-end: search, JIT re-rank, validate,
        // replay. Exercises the full pipeline in seconds.
        const auto& k = kernels::find_kernel("saxpy");
        tune::TuneOpts o;
        o.tune_sizes = {{"n", 1024}};
        o.measure_sizes = {{"n", 8192}};
        o.beam_width = 3;
        o.max_rounds = 4;
        o.jit_topk = 2;
        tune::TuneResult r = tune::autotune(k.proc, m, o);
        bool replay_ok =
            proc_digest(tune::replay_script(k.proc, r.script)) ==
            proc_digest(r.best);
        std::cerr << "autotune smoke: naive " << r.naive_cost
                  << " -> best " << r.cost << " cycles, validated="
                  << r.validated << ", replay_ok=" << replay_ok
                  << ", script: " << script_line(r.script) << "\n";
        return (r.validated && replay_ok && r.cost < r.naive_cost) ? 0
                                                                   : 1;
    }

    std::ostringstream out;
    std::vector<Case> cases = build_cases(m);

    out << "{\n  \"description\": \"autotuned-from-naive vs "
           "hand-scheduled GFLOP/s of JIT-compiled kernels (see "
           "bench/README.md)\",\n  \"kernels\": [\n";

    bool first = true;
    int hits = 0;
    int lint_checked_total = 0;
    int lint_pruned_total = 0;
    for (Case& c : cases) {
        c.opts.beam_width = 5;
        c.opts.random_restarts = 2;
        c.opts.jit_topk = 4;
        c.opts.measure_sizes = c.bench_sizes;

        // Phase-attributed tune (DESIGN.md §10): where each kernel's
        // tuning wall clock went, alongside the performance numbers.
        obs::phase_begin_collection();
        auto tune_t0 = std::chrono::steady_clock::now();
        tune::TuneResult r = tune::autotune(c.naive, m, c.opts);
        double tune_wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - tune_t0)
                .count();
        obs::PhaseBreakdown pb = obs::phase_end_collection();
        lint_checked_total += r.stats.lint_checked;
        lint_pruned_total += r.stats.lint_pruned;

        bool replay_ok =
            proc_digest(tune::replay_script(c.naive, r.script)) ==
            proc_digest(r.best);
        // The tuner validated at tune sizes; re-check at bench sizes.
        bool clean =
            r.validated &&
            verify::tri_oracle_check(c.naive, r.best, c.bench_sizes, 99)
                .ok;

        double g_naive = measure_gflops(c.naive, c.bench_sizes, c.flops);
        double g_hand = measure_gflops(c.hand, c.bench_sizes, c.flops);
        double g_tuned = measure_gflops(r.best, c.bench_sizes, c.flops);
        double ratio = g_tuned / std::max(g_hand, 1e-12);
        if (ratio >= 0.8 && clean && replay_ok)
            hits++;

        std::cerr.setf(std::ios::fixed);
        std::cerr.precision(2);
        std::cerr << c.name << " (" << env_str(c.bench_sizes)
                  << "): naive " << g_naive << ", hand " << g_hand
                  << ", tuned " << g_tuned << " GFLOP/s (" << ratio * 100
                  << "% of hand), validated=" << clean
                  << ", replay_ok=" << replay_ok << "\n  script: "
                  << script_line(r.script) << "\n";

        char nums[512];
        std::snprintf(
            nums, sizeof(nums),
            "\"flops_per_call\": %.0f,\n"
            "     \"naive_gflops\": %.3f, \"hand_gflops\": %.3f, "
            "\"tuned_gflops\": %.3f, \"tuned_vs_hand\": %.3f,\n"
            "     \"sim_cycles_naive\": %.0f, \"sim_cycles_tuned\": "
            "%.0f, \"states_scored\": %d,\n"
            "     \"lint_checked\": %d, \"lint_pruned\": %d, "
            "\"lint_seconds\": %.4f",
            c.flops, g_naive, g_hand, g_tuned, ratio, r.naive_cost,
            r.cost, r.stats.states_scored, r.stats.lint_checked,
            r.stats.lint_pruned, r.stats.lint_seconds);
        char phases[512];
        std::snprintf(
            phases, sizeof(phases),
            "\"tune_wall_ms\": %.1f,\n"
            "     \"tune_phases_ms\": {\"lint\": %.1f, \"cache\": %.1f, "
            "\"search\": %.1f, \"cjit\": %.1f, \"validate\": %.1f}",
            tune_wall_ms, pb.of(obs::Phase::Lint) * 1000.0,
            pb.of(obs::Phase::Cache) * 1000.0,
            pb.of(obs::Phase::Search) * 1000.0,
            pb.of(obs::Phase::Cjit) * 1000.0,
            pb.of(obs::Phase::Validate) * 1000.0);
        out << (first ? "" : ",\n") << "    {\"name\": \""
            << json_escape(c.name) << "\", \"sizes\": \""
            << json_escape(env_str(c.bench_sizes)) << "\", " << nums
            << ",\n     " << phases
            << ",\n     \"validated\": " << (clean ? "true" : "false")
            << ", \"replay_ok\": " << (replay_ok ? "true" : "false")
            << ",\n     \"script\": \""
            << json_escape(verify::script_to_string(r.script))
            << "\"}";
        first = false;
    }
    // Lint-gate demonstration (DESIGN.md §9): the five kernels above
    // are correct, so their sound rewrites prune nothing — checked > 0,
    // pruned == 0 is itself the acceptance property (winners bit-for-
    // bit unaffected). To show the gate fires, tune a kernel carrying
    // a proven out-of-bounds fencepost store: every rewrite inherits
    // the violation, so every candidate is pruned before a single JIT
    // compile is paid for.
    {
        ProcPtr oob = parse_proc(R"(
def saxpy_fencepost(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = y[i] + a * x[i]
    y[n] = 0.0
)");
        tune::TuneOpts o;
        o.tune_sizes = {{"n", 2048}};
        o.beam_width = 4;
        o.max_rounds = 4;
        o.jit_topk = 0;
        o.validate = false;
        o.use_cache = false;
        tune::TuneResult r = tune::autotune(oob, m, o);
        lint_checked_total += r.stats.lint_checked;
        lint_pruned_total += r.stats.lint_pruned;
        std::cerr << "lint gate: " << lint_pruned_total << "/"
                  << lint_checked_total
                  << " candidates pruned pre-JIT across the run ("
                  << r.stats.lint_pruned << "/" << r.stats.lint_checked
                  << " from the seeded out-of-bounds kernel)\n";
        char lg[256];
        std::snprintf(
            lg, sizeof(lg),
            "  \"lint_gate\": {\"checked\": %d, \"pruned\": %d, "
            "\"pruned_fraction\": %.4f,\n"
            "    \"seeded_oob_checked\": %d, \"seeded_oob_pruned\": "
            "%d},\n",
            lint_checked_total, lint_pruned_total,
            lint_checked_total
                ? static_cast<double>(lint_pruned_total) /
                      lint_checked_total
                : 0.0,
            r.stats.lint_checked, r.stats.lint_pruned);
        out << "\n  ],\n" << lg;
    }
    out << "  \"tuned_at_80pct_of_hand\": " << hits << "\n}\n";
    if (!bench::write_file_atomic(out_path, out.str())) {
        std::cerr << "failed to write " << out_path << "\n";
        return 3;
    }
    std::cerr << "wrote " << out_path << " (" << hits << "/"
              << cases.size() << " kernels at >= 80% of hand)\n";
    return hits >= 3 ? 0 : 2;
}
