/**
 * @file
 * Scheduling-time microbenchmarks (google-benchmark): the paper's
 * Discussion reports ~30 s to schedule GEMM and ~2 min for unsharp
 * under Python + SMT; this implementation's linear-arithmetic checker
 * is documented in DESIGN.md as the substitution. Also covers the
 * cursor-forwarding ablation (DESIGN.md #1): forwarding a cursor
 * across a schedule vs re-resolving it by pattern each step.
 */

#include <benchmark/benchmark.h>

#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/sched/blas.h"
#include "src/sched/gemm.h"
#include "src/sched/halide.h"

using namespace exo2;
using namespace exo2::sched;

static void
BM_ScheduleAxpyLevel1(benchmark::State& state)
{
    const auto& k = kernels::find_kernel("saxpy");
    for (auto _ : state) {
        benchmark::DoNotOptimize(optimize_level_1(
            k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 4));
    }
}
BENCHMARK(BM_ScheduleAxpyLevel1)->Unit(benchmark::kMillisecond);

static void
BM_ScheduleSgemm(benchmark::State& state)
{
    ProcPtr base =
        sgemm_with_asserts(kernels::sgemm(), machine_avx512());
    for (auto _ : state) {
        benchmark::DoNotOptimize(schedule_sgemm(base, machine_avx512()));
    }
}
BENCHMARK(BM_ScheduleSgemm)->Unit(benchmark::kMillisecond);

static void
BM_ScheduleBlur(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            schedule_blur_like_halide(kernels::blur(), machine_avx512()));
    }
}
BENCHMARK(BM_ScheduleBlur)->Unit(benchmark::kMillisecond);

/** Forwarding ablation: tile gemv, then locate the reduce statement
 *  after the fact — via a forwarded cursor (O(chain)) or by re-running
 *  the pattern matcher at every step (the brittle one-time-reference
 *  style of Section 5.1). */
static void
BM_CursorForwarding(benchmark::State& state)
{
    const auto& k = kernels::find_kernel("sgemv_n");
    for (auto _ : state) {
        ProcPtr p = k.proc;
        Cursor red = p->find("y[_] += _");
        p = divide_loop(p, "i", 8, {"io", "ii"}, TailStrategy::Guard);
        p = divide_loop(p, "j", 8, {"jo", "ji"}, TailStrategy::Guard);
        p = lift_scope(p, "jo");
        Cursor now = p->forward(red);
        benchmark::DoNotOptimize(now.stmt());
    }
}
BENCHMARK(BM_CursorForwarding)->Unit(benchmark::kMillisecond);

static void
BM_PatternRefind(benchmark::State& state)
{
    const auto& k = kernels::find_kernel("sgemv_n");
    for (auto _ : state) {
        ProcPtr p = k.proc;
        p = divide_loop(p, "i", 8, {"io", "ii"}, TailStrategy::Guard);
        Cursor red = p->find("y[_] += _");  // must re-resolve every step
        benchmark::DoNotOptimize(red);
        p = divide_loop(p, "j", 8, {"jo", "ji"}, TailStrategy::Guard);
        red = p->find("y[_] += _");
        p = lift_scope(p, "jo");
        red = p->find("y[_] += _");
        benchmark::DoNotOptimize(red.stmt());
    }
}
BENCHMARK(BM_PatternRefind)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
