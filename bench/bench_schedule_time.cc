/**
 * @file
 * Scheduling-time microbenchmarks (google-benchmark): the paper's
 * Discussion reports ~30 s to schedule GEMM and ~2 min for unsharp
 * under Python + SMT; this implementation's linear-arithmetic checker
 * is documented in DESIGN.md as the substitution. Also covers the
 * cursor-forwarding ablation (DESIGN.md #1): forwarding a cursor
 * across a schedule vs re-resolving it by pattern each step.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/memo.h"
#include "src/cursor/accel.h"
#include "src/ir/builder.h"
#include "src/ir/interner.h"
#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/sched/blas.h"
#include "src/sched/gemm.h"
#include "src/sched/halide.h"

using namespace exo2;
using namespace exo2::sched;

static void
BM_ScheduleAxpyLevel1(benchmark::State& state)
{
    const auto& k = kernels::find_kernel("saxpy");
    for (auto _ : state) {
        benchmark::DoNotOptimize(optimize_level_1(
            k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 4));
    }
}
BENCHMARK(BM_ScheduleAxpyLevel1)->Unit(benchmark::kMillisecond);

static void
BM_ScheduleSgemm(benchmark::State& state)
{
    ProcPtr base =
        sgemm_with_asserts(kernels::sgemm(), machine_avx512());
    for (auto _ : state) {
        benchmark::DoNotOptimize(schedule_sgemm(base, machine_avx512()));
    }
}
BENCHMARK(BM_ScheduleSgemm)->Unit(benchmark::kMillisecond);

static void
BM_ScheduleBlur(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            schedule_blur_like_halide(kernels::blur(), machine_avx512()));
    }
}
BENCHMARK(BM_ScheduleBlur)->Unit(benchmark::kMillisecond);

/** Forwarding ablation: tile gemv, then locate the reduce statement
 *  after the fact — via a forwarded cursor (O(chain)) or by re-running
 *  the pattern matcher at every step (the brittle one-time-reference
 *  style of Section 5.1). */
static void
BM_CursorForwarding(benchmark::State& state)
{
    const auto& k = kernels::find_kernel("sgemv_n");
    for (auto _ : state) {
        ProcPtr p = k.proc;
        Cursor red = p->find("y[_] += _");
        p = divide_loop(p, "i", 8, {"io", "ii"}, TailStrategy::Guard);
        p = divide_loop(p, "j", 8, {"jo", "ji"}, TailStrategy::Guard);
        p = lift_scope(p, "jo");
        Cursor now = p->forward(red);
        benchmark::DoNotOptimize(now.stmt());
    }
}
BENCHMARK(BM_CursorForwarding)->Unit(benchmark::kMillisecond);

static void
BM_PatternRefind(benchmark::State& state)
{
    const auto& k = kernels::find_kernel("sgemv_n");
    for (auto _ : state) {
        ProcPtr p = k.proc;
        p = divide_loop(p, "i", 8, {"io", "ii"}, TailStrategy::Guard);
        Cursor red = p->find("y[_] += _");  // must re-resolve every step
        benchmark::DoNotOptimize(red);
        p = divide_loop(p, "j", 8, {"jo", "ji"}, TailStrategy::Guard);
        red = p->find("y[_] += _");
        p = lift_scope(p, "jo");
        red = p->find("y[_] += _");
        benchmark::DoNotOptimize(red.stmt());
    }
}
BENCHMARK(BM_PatternRefind)->Unit(benchmark::kMillisecond);

/**
 * Long-schedule scalability (DESIGN.md §3): n independent loop nests,
 * one primitive applied per nest, a fixed set of origin cursors
 * forwarded after every step and the target loop re-found by name each
 * step. Pre-PR-2 this is O(n²) — forwarding replays the whole
 * provenance chain and every find walks the whole tree; with path
 * compression and the subtree pattern index the per-step cost is
 * ~constant, so the sweep (50/200/800) should scale ~linearly.
 */
static ProcPtr
make_long_proc(int n)
{
    std::vector<StmtPtr> body;
    for (int k = 0; k < n; k++) {
        std::string it = "i" + std::to_string(k);
        ExprPtr rhs =
            read("x", {var(it)}) + num_const(1.0, ScalarType::F32);
        body.push_back(Stmt::make_for(
            it, idx_const(0), idx_const(64),
            {Stmt::make_assign("x", {var(it)}, rhs, ScalarType::F32)}));
    }
    return Proc::make(
        "long_sched",
        {buffer_arg("x", ScalarType::F32, {idx_const(64)})}, {},
        std::move(body));
}

static ProcPtr
run_long_schedule(const ProcPtr& base, int n)
{
    // Cursors created on the origin version, forwarded at every step —
    // the paper's recommended style for long schedules.
    std::vector<Cursor> tracked;
    for (int k = 0; k < 16 && k < n; k++)
        tracked.push_back(base->find_loop("i" + std::to_string(k)));
    ProcPtr cur = base;
    for (int k = 0; k < n; k++) {
        std::string it = "i" + std::to_string(k);
        Cursor lc = cur->find_loop(it);
        cur = divide_loop(cur, lc, 4, {it + "o", it + "i"},
                          TailStrategy::Cut);
        for (const Cursor& c : tracked)
            benchmark::DoNotOptimize(cur->forward(c));
    }
    return cur;
}

static void
BM_LongSchedule(benchmark::State& state)
{
    ProcPtr base = make_long_proc(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            run_long_schedule(base, static_cast<int>(state.range(0))));
    }
}
BENCHMARK(BM_LongSchedule)
    ->Arg(50)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

/** Ablation: identical schedule with forwarding compression and the
 *  pattern index off — i.e. naive provenance replay + full-tree
 *  search, the pre-PR-2 behavior. */
static void
BM_LongScheduleNoCompress(benchmark::State& state)
{
    ProcPtr base = make_long_proc(static_cast<int>(state.range(0)));
    bool fwd_was = forwarding_compression_enabled();
    bool idx_was = pattern_index_enabled();
    set_forwarding_compression_enabled(false);
    set_pattern_index_enabled(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            run_long_schedule(base, static_cast<int>(state.range(0))));
    }
    set_forwarding_compression_enabled(fwd_was);
    set_pattern_index_enabled(idx_was);
}
BENCHMARK(BM_LongScheduleNoCompress)
    ->Arg(50)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

/** Ablation: the same schedules with every analysis memo cache off —
 *  quantifies what interning-keyed memoization buys on its own. */
static void
BM_ScheduleSgemmNoMemo(benchmark::State& state)
{
    ProcPtr base = sgemm_with_asserts(kernels::sgemm(), machine_avx512());
    set_analysis_memo_enabled(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(schedule_sgemm(base, machine_avx512()));
    }
    set_analysis_memo_enabled(true);
}
BENCHMARK(BM_ScheduleSgemmNoMemo)->Unit(benchmark::kMillisecond);

static void
BM_ScheduleBlurNoMemo(benchmark::State& state)
{
    set_analysis_memo_enabled(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            schedule_blur_like_halide(kernels::blur(), machine_avx512()));
    }
    set_analysis_memo_enabled(true);
}
BENCHMARK(BM_ScheduleBlurNoMemo)->Unit(benchmark::kMillisecond);

/**
 * Custom main: always emit machine-readable JSON. Unless the caller
 * passes --benchmark_out explicitly, results go to the file named by
 * $EXO2_BENCH_OUT (default "BENCH_schedule_time.raw.json" in the
 * working directory); scripts/bench_schedule.sh folds that into the
 * repo-level BENCH_schedule_time.json trajectory.
 */
int
main(int argc, char** argv)
{
    // EXO2_CURSOR_ACCEL=0 runs every benchmark with the cursor-layer
    // acceleration off (naive forwarding replay + full-tree pattern
    // search): the pre-PR-2 behavior, used to record the "pre" entry
    // of the BENCH_schedule_time.json trajectory.
    const char* accel_env = std::getenv("EXO2_CURSOR_ACCEL");
    if (accel_env && std::strcmp(accel_env, "0") == 0) {
        set_forwarding_compression_enabled(false);
        set_pattern_index_enabled(false);
    }
    std::vector<char*> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
            std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
            has_out = true;
        }
    }
    const char* env_out = std::getenv("EXO2_BENCH_OUT");
    std::string out_flag = std::string("--benchmark_out=") +
                           (env_out ? env_out : "BENCH_schedule_time.raw.json");
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    InternerStats is = expr_interner_stats();
    AnalysisMemoStats ms = analysis_memo_stats();
    CursorAccelStats cs = cursor_accel_stats();
    std::fprintf(stderr,
                 "cursor accel: fwd %llu hits / %llu steps, index %llu/%llu "
                 "(hits/builds), %llu subtrees pruned\n",
                 (unsigned long long)cs.fwd_hits,
                 (unsigned long long)cs.fwd_misses,
                 (unsigned long long)cs.index_hits,
                 (unsigned long long)cs.index_misses,
                 (unsigned long long)cs.index_pruned);
    std::fprintf(stderr,
                 "interner: %llu nodes, %llu hits / %llu misses\n"
                 "memo: affine %llu/%llu, linear %llu/%llu, "
                 "effects %llu/%llu (hits/misses)\n",
                 (unsigned long long)is.live_nodes,
                 (unsigned long long)is.hits, (unsigned long long)is.misses,
                 (unsigned long long)ms.affine_hits,
                 (unsigned long long)ms.affine_misses,
                 (unsigned long long)ms.linear_hits,
                 (unsigned long long)ms.linear_misses,
                 (unsigned long long)ms.effects_hits,
                 (unsigned long long)ms.effects_misses);
    return 0;
}
