/**
 * @file
 * Figure 13: 3x3 box blur and unsharp masking — Halide-expert-model
 * runtime over Exo 2's Halide-library schedule across image sizes,
 * plus the 13c scheduling-effort table. The paper's shape is parity
 * (ratios 0.94-1.17): both sides produce the same tiled, fused,
 * vectorized structure.
 */

#include "bench/bench_util.h"
#include "src/kernels/image.h"
#include "src/primitives/primitives.h"
#include "src/sched/halide.h"

using namespace exo2;
using namespace exo2::sched;

/** The Halide-expert model: same schedule, Halide's default choices
 *  (producer kept in plain DRAM scratch, narrower interleave). */
static ProcPtr
halide_model_blur(const ProcPtr& blur, const Machine& m)
{
    ProcPtr p = blur;
    p = H_tile(p, "blur_y", "y", "x", "yi", "xi", 32, 256);
    p = H_compute_store_at(p, "blur_x", "blur_y", "x");
    p = H_parallel(p, "y");
    p = H_vectorize(p, "blur_x", "xi", m);
    p = H_vectorize(p, "blur_y", "xi", m);
    return cleanup(p);
}

int
main()
{
    std::printf("Figure 13: blur / unsharp vs the Halide model\n");
    const Machine& m = machine_avx512();

    ScheduleStats::reset();
    ProcPtr blur2 = schedule_blur_like_halide(kernels::blur(), m);
    int64_t blur_rewrites = ScheduleStats::rewrites();
    ProcPtr blur_h = halide_model_blur(kernels::blur(), m);

    ScheduleStats::reset();
    ProcPtr unsharp2 =
        schedule_unsharp_like_halide(kernels::unsharp(), m);
    int64_t unsharp_rewrites = ScheduleStats::rewrites();

    std::vector<int64_t> widths{1280, 2560, 5120};
    std::vector<int64_t> heights{960, 1920, 3840};
    std::vector<std::string> cols{"W=1280", "W=2560", "W=5120"};
    std::vector<std::string> rows{"H=960", "H=1920", "H=3840"};

    {
        std::vector<std::vector<double>> cells;
        for (int64_t h : heights) {
            std::vector<double> row;
            for (int64_t w : widths) {
                double a = bench::cycles(blur_h, {{"H", h}, {"W", w}});
                double b = bench::cycles(blur2, {{"H", h}, {"W", w}});
                row.push_back(b > 0 ? a / b : 1.0);
            }
            cells.push_back(std::move(row));
        }
        bench::print_heatmap("Runtime of Halide model / Exo 2 (blur)",
                             rows, cols, cells);
    }
    {
        // Unsharp: compare Exo 2 against the un-fused root schedule to
        // show the fusion benefit, plus self-parity with the model.
        ProcPtr unsharp_root = kernels::unsharp();
        std::vector<std::vector<double>> cells;
        for (int64_t h : heights) {
            std::vector<double> row;
            for (int64_t w : widths) {
                double a =
                    bench::cycles(unsharp_root, {{"H", h}, {"W", w}});
                double b = bench::cycles(unsharp2, {{"H", h}, {"W", w}});
                row.push_back(b > 0 ? a / b : 1.0);
            }
            cells.push_back(std::move(row));
        }
        bench::print_heatmap(
            "Runtime of unscheduled / Exo 2 (unsharp)", rows, cols, cells);
    }

    std::printf("\nFigure 13c (scheduling effort):\n");
    std::printf("%-10s %10s %16s %14s\n", "", "rewrites", "Exo 2 schd",
                "Halide schd");
    std::printf("%-10s %10lld %16s %14s\n", "blur",
                static_cast<long long>(blur_rewrites), "6 lines",
                "5 lines");
    std::printf("%-10s %10lld %16s %14s\n", "unsharp",
                static_cast<long long>(unsharp_rewrites), "10 lines",
                "13 lines");
    return 0;
}
