#ifndef EXO2_BENCH_BENCH_UTIL_H_
#define EXO2_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared benchmark-harness utilities: heatmap printing in the paper's
 * format (each cell a runtime ratio "reference / Exo 2"; higher is
 * better for Exo 2) and cost-simulation wrappers.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/machine/cost_sim.h"
#include "src/util/file_atomic.h"

namespace exo2 {
namespace bench {

/** Print a ratio heatmap in the paper's layout. */
inline void
print_heatmap(const std::string& title,
              const std::vector<std::string>& row_labels,
              const std::vector<std::string>& col_labels,
              const std::vector<std::vector<double>>& cells)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-14s", "");
    for (const auto& c : col_labels)
        std::printf("%10s", c.c_str());
    std::printf("\n");
    for (size_t r = 0; r < row_labels.size(); r++) {
        std::printf("%-14s", row_labels[r].c_str());
        for (size_t c = 0; c < cells[r].size(); c++)
            std::printf("%10.2f", cells[r][c]);
        std::printf("\n");
    }
}

/** Simulated cycles of `p` under the given sizes. */
inline double
cycles(const ProcPtr& p, const std::map<std::string, int64_t>& sizes,
       const CostConfig& cfg = CostConfig())
{
    return simulate_cost_named(p, sizes, cfg).cycles;
}

/** Render a size environment as `"M=192, N=192"`. */
inline std::string
env_str(const std::map<std::string, int64_t>& env)
{
    std::string s;
    for (const auto& [k, v] : env)
        s += (s.empty() ? "" : ", ") + k + "=" + std::to_string(v);
    return s;
}

/** Minimal JSON string escaping: quotes, backslashes, and control
 *  characters (newlines included, as unicode escapes), so embedded
 *  schedule scripts survive the round trip through a JSON value. */
inline std::string
json_escape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/**
 * Atomic benchmark-JSON writes. The implementation moved to
 * src/util/file_atomic.h so the persistent caches, the scheduling
 * daemon, and the benchmark writers share one audited temp+fsync+
 * rename path; this alias keeps the historical bench:: spelling.
 */
using ::exo2::util::write_file_atomic;

}  // namespace bench
}  // namespace exo2

#endif  // EXO2_BENCH_BENCH_UTIL_H_
