/**
 * @file
 * Scheduling-service benchmark (DESIGN.md §8): a forked exo2d-style
 * daemon, hammered by concurrent clients over its unix-domain socket,
 * measured cold (every tune a full search) and warm (every tune a
 * validated cache replay), then driven through the fault classes the
 * service is built to survive — injected cache corruption/staleness,
 * queue saturation, JIT compiler trouble — and finally kill -9 of the
 * daemon mid-run with a restart, while clients retry through the
 * outage. Results go to BENCH_serve.json.
 *
 * The acceptance bars (ROADMAP): warm-cache tuning >= 50x faster than
 * cold with bit-for-bit identical winners, and zero failed requests
 * across every phase — backpressure REJECTED (retried) and flagged
 * `degraded` answers are the only permitted non-ok outcomes.
 *
 * Usage: bench_serve [output.json]
 *        bench_serve --faults   (reduced budgets, spec from EXO2_FAULTS,
 *                                vacuity-checked; for
 *                                scripts/check_serve.sh)
 */

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/client.h"
#include "src/serve/daemon.h"
#include "src/verify/sandbox.h"

#include "bench/bench_util.h"

namespace {

using namespace exo2;
using serve::Daemon;
using serve::ServeClient;
using serve::ServeConfig;
using serve::ServeRequest;
using serve::ServeResponse;

double
now_ms()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The representative request mix: every kernel family the tuner
 *  knows, at the tune sizes bench_autotune uses. */
struct Req
{
    const char* kernel;
    const char* sizes;
    int rounds;
};

const Req kRequests[] = {
    {"saxpy", "n=2048", 5},      {"sdot", "n=2048", 5},
    {"sgemv_n", "M=96,N=96", 5}, {"sgemm", "K=48,M=48,N=48", 6},
    {"blur", "H=32,W=256", 5},
};

ServeRequest
make_request(const Req& r, bool full_budget)
{
    ServeRequest req;
    req.op = "tune";
    req.kernel = r.kernel;
    req.sizes = r.sizes;
    if (full_budget) {
        req.beam = 4;
        req.rounds = r.rounds;
        req.restarts = 1;
        req.jit_topk = 2;
    } else {
        req.beam = 2;
        req.rounds = 2;
        req.restarts = 0;
        req.jit_topk = 0;
    }
    return req;
}

/** Fork a daemon into its own process (so SIGKILL is the real thing).
 *  The child inherits the current environment — EXO2_CACHE_DIR and
 *  EXO2_FAULTS are set by the parent before the fork. */
pid_t
spawn_daemon(const ServeConfig& cfg)
{
    pid_t pid = fork();
    if (pid == 0) {
        Daemon d(cfg);
        try {
            d.start();
        } catch (const std::exception& e) {
            std::cerr << "daemon child: " << e.what() << "\n";
            _exit(3);
        }
        for (;;)
            pause();
    }
    return pid;
}

bool
wait_for_socket(const std::string& path, double seconds = 10.0)
{
    for (int i = 0; i < static_cast<int>(seconds * 100); i++) {
        ServeClient probe(path, 1.0);
        if (probe.connect())
            return true;
        usleep(10 * 1000);
    }
    return false;
}

void
kill_daemon(pid_t pid)
{
    if (pid > 0) {
        kill(pid, SIGKILL);
        int st = 0;
        waitpid(pid, &st, 0);
    }
}

/** One measured request (cold/warm passes run these serially so the
 *  timings mean something; the phase runs use threads). */
struct Timed
{
    ServeResponse resp;
    double ms = 0;
};

Timed
timed_call(const std::string& socket, const ServeRequest& req)
{
    Timed t;
    ServeClient client(socket, 120.0);
    double t0 = now_ms();
    t.resp = client.call_with_retry(req, 20);
    t.ms = now_ms() - t0;
    return t;
}

uint64_t
stat_of(const std::string& socket, const char* key)
{
    ServeClient client(socket, 30.0);
    ServeRequest req;
    req.op = "stats";
    ServeResponse resp;
    if (!client.call(req, &resp) || !resp.extra.count(key))
        return 0;
    return std::strtoull(resp.extra.at(key).c_str(), nullptr, 10);
}

double
stat_double(const std::string& socket, const char* key)
{
    ServeClient client(socket, 30.0);
    ServeRequest req;
    req.op = "stats";
    ServeResponse resp;
    if (!client.call(req, &resp) || !resp.extra.count(key))
        return 0;
    return std::strtod(resp.extra.at(key).c_str(), nullptr);
}

/** The daemon's per-phase attribution extras of one response
 *  (DESIGN.md §10), re-emitted as a JSON object. */
std::string
phases_json(const ServeResponse& resp)
{
    static const char* kPhases[] = {"queue",  "lint", "cache",
                                    "search", "cjit", "validate"};
    std::string s = "{";
    bool first = true;
    for (const char* p : kPhases) {
        auto it = resp.extra.find(std::string("phase_") + p + "_ms");
        if (it == resp.extra.end())
            continue;
        s += std::string(first ? "" : ", ") + "\"" + p +
             "\": " + it->second;
        first = false;
    }
    return s + "}";
}

/** Tally of one multi-client phase. "Failed" means a transport-dead
 *  final answer or status=error — the outcomes the service promises
 *  never to produce for well-formed requests. */
struct PhaseResult
{
    int ok = 0;
    int degraded = 0;
    int failed = 0;
    double ms = 0;
    uint64_t faults_fired = 0;
};

/** `threads` clients, each sending every request in the mix through
 *  call_with_retry (REJECTED backpressure is retried, not failed). */
PhaseResult
hammer(const std::string& socket, int threads, bool full_budget,
       int attempts = 20)
{
    PhaseResult pr;
    std::vector<std::thread> ts;
    std::mutex mu;
    double t0 = now_ms();
    for (int t = 0; t < threads; t++) {
        ts.emplace_back([&, t] {
            ServeClient client(socket, 120.0);
            for (size_t i = 0; i < std::size(kRequests); i++) {
                ServeRequest req =
                    make_request(kRequests[i], full_budget);
                req.id = std::to_string(t) + "-" + req.kernel;
                ServeResponse resp =
                    client.call_with_retry(req, attempts);
                std::lock_guard<std::mutex> lk(mu);
                if (resp.ok())
                    pr.ok++;
                else if (resp.degraded())
                    pr.degraded++;
                else
                    pr.failed++;
            }
        });
    }
    for (auto& th : ts)
        th.join();
    pr.ms = now_ms() - t0;
    return pr;
}

std::string
fresh_cache_dir()
{
    char tmpl[] = "/tmp/exo2_bench_serve_XXXXXX";
    const char* d = mkdtemp(tmpl);
    if (!d) {
        std::cerr << "mkdtemp failed\n";
        std::exit(3);
    }
    return d;
}

std::string
fresh_socket()
{
    return "/tmp/exo2_bench_" + std::to_string(getpid()) + ".sock";
}

/** The injected-fault phases of the default run: each class gets a
 *  fresh daemon generation with EXO2_FAULTS set in its environment. */
struct FaultPhase
{
    const char* name;
    const char* spec;
};

const FaultPhase kFaultPhases[] = {
    {"cache_corrupt", "seed=101,cache_corrupt=0.5"},
    {"cache_stale", "seed=102,cache_stale=0.5"},
    {"queue_full", "seed=103,queue_full=0.3"},
    {"jit_trouble",
     "seed=104,compile_fail=0.1,dlopen_fail=0.1,sigsegv=0.05"},
};

/** --faults mode: the externally-supplied EXO2_FAULTS spec drives a
 *  multi-client hammer plus a kill -9/restart, vacuity-checked. Used
 *  by scripts/check_serve.sh. */
int
run_fault_mode()
{
    verify::FaultSpec spec = verify::current_fault_spec();
    if (!spec.any()) {
        std::cerr << "bench_serve --faults: EXO2_FAULTS is not set or "
                     "injects nothing; refusing to pass vacuously\n";
        return 2;
    }
    std::cerr << "bench_serve --faults: spec "
              << verify::fault_spec_to_string(spec) << "\n";

    std::string cache_dir = fresh_cache_dir();
    setenv("EXO2_CACHE_DIR", cache_dir.c_str(), 1);
    ServeConfig cfg;
    cfg.socket_path = fresh_socket();
    cfg.workers = 2;
    cfg.queue_capacity = 4;

    pid_t pid = spawn_daemon(cfg);
    if (pid <= 0 || !wait_for_socket(cfg.socket_path)) {
        std::cerr << "bench_serve --faults: daemon did not start\n";
        return 3;
    }

    PhaseResult round1 = hammer(cfg.socket_path, 4, false);
    uint64_t fired = stat_of(cfg.socket_path, "faults_fired");

    // kill -9 mid-flight, restart, retry through the outage.
    std::thread killer([&] {
        usleep(100 * 1000);
        kill_daemon(pid);
        usleep(100 * 1000);
        pid = spawn_daemon(cfg);
    });
    PhaseResult round2 = hammer(cfg.socket_path, 4, false, 30);
    killer.join();
    uint64_t fired2 = stat_of(cfg.socket_path, "faults_fired");
    kill_daemon(pid);
    unlink(cfg.socket_path.c_str());

    std::cerr << "bench_serve --faults: round1 ok=" << round1.ok
              << " degraded=" << round1.degraded
              << " failed=" << round1.failed << " (faults_fired="
              << fired << "); kill-9 round ok=" << round2.ok
              << " degraded=" << round2.degraded
              << " failed=" << round2.failed << " (faults_fired="
              << fired2 << ")\n";
    if (fired == 0) {
        std::cerr << "bench_serve --faults: no fault fired; the gate "
                     "would be vacuous — failing\n";
        return 2;
    }
    return (round1.failed == 0 && round2.failed == 0) ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool faults = argc > 1 && std::string(argv[1]) == "--faults";
    std::string out_path = "BENCH_serve.json";
    if (argc > 1 && !faults)
        out_path = argv[1];

    setenv("EXO2_NATIVE_ISA", "auto", /*overwrite=*/0);

    if (faults)
        return run_fault_mode();

    std::string cache_dir = fresh_cache_dir();
    setenv("EXO2_CACHE_DIR", cache_dir.c_str(), 1);
    unsetenv("EXO2_FAULTS");

    ServeConfig cfg;
    cfg.socket_path = fresh_socket();
    cfg.workers = 4;
    cfg.queue_capacity = 32;

    pid_t pid = spawn_daemon(cfg);
    if (pid <= 0 || !wait_for_socket(cfg.socket_path)) {
        std::cerr << "bench_serve: daemon did not start\n";
        return 3;
    }

    std::ostringstream out;
    out << "{\n  \"description\": \"scheduling-service benchmark: "
           "cold vs warm-cache tuning latency and multi-client "
           "robustness under injected faults and kill -9 (see "
           "bench/README.md)\",\n";

    // -- Cold pass: every request is a full search -----------------------
    std::cerr << "cold pass (full search, empty cache):\n";
    double cold_total = 0, warm_total = 0;
    std::vector<Timed> cold(std::size(kRequests));
    std::vector<Timed> warm(std::size(kRequests));
    out << "  \"requests\": [\n";
    for (size_t i = 0; i < std::size(kRequests); i++) {
        ServeRequest req = make_request(kRequests[i], true);
        req.id = std::string("cold-") + kRequests[i].kernel;
        cold[i] = timed_call(cfg.socket_path, req);
        cold_total += cold[i].ms;
        std::cerr << "  " << kRequests[i].kernel << ": "
                  << cold[i].resp.status << " in " << cold[i].ms
                  << " ms (cost " << cold[i].resp.cost << " vs naive "
                  << cold[i].resp.naive_cost << ")\n";
    }

    // -- Warm pass: identical requests, cache-hit replays ----------------
    std::cerr << "warm pass (same requests, populated cache):\n";
    bool bitwise_ok = true, all_ok = true;
    for (size_t i = 0; i < std::size(kRequests); i++) {
        ServeRequest req = make_request(kRequests[i], true);
        req.id = std::string("warm-") + kRequests[i].kernel;
        warm[i] = timed_call(cfg.socket_path, req);
        warm_total += warm[i].ms;
        bool bfb = warm[i].resp.from_cache &&
                   warm[i].resp.script == cold[i].resp.script;
        bitwise_ok = bitwise_ok && bfb;
        all_ok = all_ok && cold[i].resp.ok() && warm[i].resp.ok() &&
                 warm[i].resp.validated;
        std::cerr << "  " << kRequests[i].kernel << ": "
                  << warm[i].resp.status << " in " << warm[i].ms
                  << " ms, from_cache=" << warm[i].resp.from_cache
                  << ", bit_for_bit=" << bfb << "\n";
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"kernel\": \"%s\", \"sizes\": \"%s\", "
                      "\"cold_ms\": %.1f, \"warm_ms\": %.1f, "
                      "\"cost\": %.0f, \"naive_cost\": %.0f, "
                      "\"bit_for_bit\": %s,\n",
                      kRequests[i].kernel, kRequests[i].sizes,
                      cold[i].ms, warm[i].ms, cold[i].resp.cost,
                      cold[i].resp.naive_cost, bfb ? "true" : "false");
        out << buf << "     \"cold_phases_ms\": "
            << phases_json(cold[i].resp) << ",\n     \"warm_phases_ms\": "
            << phases_json(warm[i].resp) << "}"
            << (i + 1 < std::size(kRequests) ? "," : "") << "\n";
    }
    out << "  ],\n";
    double speedup = cold_total / std::max(warm_total, 1e-9);
    std::cerr.setf(std::ios::fixed);
    std::cerr.precision(1);
    std::cerr << "cold " << cold_total << " ms -> warm " << warm_total
              << " ms: " << speedup << "x\n";

    // -- Fault phases: fresh daemon generation per class -----------------
    out << "  \"fault_phases\": [\n";
    bool phases_clean = true;
    size_t n_phases = std::size(kFaultPhases);
    for (size_t i = 0; i < n_phases; i++) {
        kill_daemon(pid);
        // A fresh cache per phase so stores (the cache_corrupt /
        // cache_stale injection sites) and JIT builds actually happen;
        // against the warm cache every request would be a pure hit and
        // the phase would pass vacuously.
        std::string phase_cache = fresh_cache_dir();
        setenv("EXO2_CACHE_DIR", phase_cache.c_str(), 1);
        setenv("EXO2_FAULTS", kFaultPhases[i].spec, 1);
        pid = spawn_daemon(cfg);
        if (!wait_for_socket(cfg.socket_path)) {
            std::cerr << "bench_serve: restart failed\n";
            return 3;
        }
        PhaseResult pr = hammer(cfg.socket_path, 4, false);
        pr.faults_fired = stat_of(cfg.socket_path, "faults_fired");
        phases_clean =
            phases_clean && pr.failed == 0 && pr.faults_fired > 0;
        std::cerr << "fault phase " << kFaultPhases[i].name << ": ok="
                  << pr.ok << " degraded=" << pr.degraded
                  << " failed=" << pr.failed << " in " << pr.ms
                  << " ms (faults_fired=" << pr.faults_fired << ")\n";
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s\", \"spec\": \"%s\", \"ok\": %d, "
            "\"degraded\": %d, \"failed\": %d, \"faults_fired\": "
            "%llu}%s\n",
            kFaultPhases[i].name, kFaultPhases[i].spec, pr.ok,
            pr.degraded, pr.failed,
            static_cast<unsigned long long>(pr.faults_fired),
            i + 1 < n_phases ? "," : "");
        out << buf;
    }
    out << "  ],\n";
    unsetenv("EXO2_FAULTS");

    // -- Kill -9 mid-run, restart, self-heal -----------------------------
    kill_daemon(pid);
    setenv("EXO2_CACHE_DIR", cache_dir.c_str(), 1);  // back to the warm one
    pid = spawn_daemon(cfg);
    if (!wait_for_socket(cfg.socket_path)) {
        std::cerr << "bench_serve: restart failed\n";
        return 3;
    }
    pid_t doomed = pid;
    std::thread killer([&] {
        usleep(150 * 1000);
        kill_daemon(doomed);
        // Stand-in for a write the kill interrupted.
        std::ofstream(cache_dir + "/tune/zz.tune.tmp.999999999.1")
            << "orphan";
        usleep(100 * 1000);
        pid = spawn_daemon(cfg);
    });
    PhaseResult k9 = hammer(cfg.socket_path, 4, false, 30);
    killer.join();
    uint64_t swept = stat_of(cfg.socket_path, "tmp_swept");
    uint64_t cache_hits = stat_of(cfg.socket_path, "tune_cache_hits");
    std::cerr << "kill -9 phase: ok=" << k9.ok << " degraded="
              << k9.degraded << " failed=" << k9.failed << " in "
              << k9.ms << " ms (restart swept " << swept
              << " orphan temps, " << cache_hits
              << " cache hits)\n";
    bool k9_clean = k9.failed == 0 && swept >= 1;

    // Request-latency percentiles of the final daemon generation (the
    // restarted one that absorbed the kill -9 retries), from the
    // lock-free op=stats snapshot.
    uint64_t lat_count = stat_of(cfg.socket_path, "latency_count");
    double lat_p50 = stat_double(cfg.socket_path, "latency_p50_ms");
    double lat_p95 = stat_double(cfg.socket_path, "latency_p95_ms");
    double lat_p99 = stat_double(cfg.socket_path, "latency_p99_ms");

    kill_daemon(pid);
    unlink(cfg.socket_path.c_str());

    char lat[256];
    std::snprintf(lat, sizeof(lat),
                  "  \"latency_ms\": {\"count\": %llu, \"p50\": %.2f, "
                  "\"p95\": %.2f, \"p99\": %.2f},\n",
                  static_cast<unsigned long long>(lat_count), lat_p50,
                  lat_p95, lat_p99);
    out << lat;

    char tail[512];
    std::snprintf(
        tail, sizeof(tail),
        "  \"cold_total_ms\": %.1f,\n  \"warm_total_ms\": %.1f,\n"
        "  \"warm_speedup\": %.1f,\n  \"bit_for_bit_replay\": %s,\n"
        "  \"kill9\": {\"ok\": %d, \"degraded\": %d, \"failed\": %d, "
        "\"tmp_swept\": %llu},\n"
        "  \"pass\": %s\n}\n",
        cold_total, warm_total, speedup, bitwise_ok ? "true" : "false",
        k9.ok, k9.degraded, k9.failed,
        static_cast<unsigned long long>(swept),
        (speedup >= 50 && bitwise_ok && all_ok && phases_clean &&
         k9_clean)
            ? "true"
            : "false");
    out << tail;

    if (!bench::write_file_atomic(out_path, out.str())) {
        std::cerr << "failed to write " << out_path << "\n";
        return 3;
    }
    bool pass = speedup >= 50 && bitwise_ok && all_ok &&
                phases_clean && k9_clean;
    std::cerr << "wrote " << out_path << " (speedup " << speedup
              << "x, pass=" << (pass ? "true" : "false") << ")\n";
    return pass ? 0 : 1;
}
