/**
 * @file
 * Figure 6b + 6c: SGEMM on the AVX512 model over M,N in
 * {256, 512, 1024} (K = 512): Exo-model / Exo 2 runtime ratios, plus
 * the lines-of-code table (schedule size, primitive rewrites, and
 * generated-C lines standing in for Fig. 6c's comparison).
 */

#include "bench/bench_util.h"
#include "src/codegen/c_codegen.h"
#include "src/kernels/blas.h"
#include "src/primitives/primitives.h"
#include "src/sched/gemm.h"

using namespace exo2;
using namespace exo2::sched;

int
main()
{
    std::printf("Figure 6b: SGEMM on AVX512 (K = 512)\n");
    const Machine& m = machine_avx512();
    ProcPtr base = sgemm_with_asserts(kernels::sgemm(), m);

    ScheduleStats::reset();
    ProcPtr exo2_sched = schedule_sgemm(base, m);
    int64_t exo2_rewrites = ScheduleStats::rewrites();

    // Exo-model: the PLDI'22-era parameterization (narrower register
    // tile, the paper reports 0.99-1.00 ratios).
    GemmConfig exo_cfg;
    exo_cfg.m_r = 2;
    exo_cfg.n_r_vecs = 2;
    ScheduleStats::reset();
    ProcPtr exo_sched = schedule_sgemm(base, m, exo_cfg);
    int64_t exo_rewrites = ScheduleStats::rewrites();

    // Grid scaled from the paper's {256,512,1024}, K 512 -> 128, for
    // simulation speed; the register-tile ratios are size-stable.
    std::vector<int64_t> dims{64, 128, 256};
    std::vector<std::string> cols{"N=64", "N=128", "N=256"};
    std::vector<std::string> rows{"M=64", "M=128", "M=256"};
    std::vector<std::vector<double>> cells;
    for (int64_t mm : dims) {
        std::vector<double> row;
        for (int64_t nn : dims) {
            double a = bench::cycles(
                exo_sched, {{"M", mm}, {"N", nn}, {"K", 128}});
            double b = bench::cycles(
                exo2_sched, {{"M", mm}, {"N", nn}, {"K", 128}});
            row.push_back(b > 0 ? a / b : 1.0);
        }
        cells.push_back(std::move(row));
    }
    bench::print_heatmap("Runtime of Exo / Exo 2 (AVX512 SGEMM)", rows,
                         cols, cells);

    std::printf("\nFigure 6c (scheduling effort):\n");
    std::printf("%-28s %12s %12s\n", "", "Exo model", "Exo 2");
    std::printf("%-28s %12lld %12lld\n", "primitive rewrites",
                static_cast<long long>(exo_rewrites),
                static_cast<long long>(exo2_rewrites));
    std::printf("%-28s %12d %12d\n", "generated C lines",
                codegen_c_lines(exo_sched), codegen_c_lines(exo2_sched));
    std::printf("%-28s %12s %12s\n", "schedule source lines",
                "~60 (script)", "~25 (library call)");
    return 0;
}
