/**
 * @file
 * Figure 9: (a) the lines-of-code distribution — object code, schedule
 * (library call sites), and generated C — and (b) the number of
 * primitive rewrites required to optimize each kernel, including all
 * configurations (precisions, transposes, triangles), matching the
 * paper's metric exactly (its Fig. 9b counts are our ScheduleStats).
 */

#include <cstdio>
#include <map>

#include "src/baselines/baselines.h"
#include "src/codegen/c_codegen.h"
#include "src/ir/printer.h"
#include "src/primitives/primitives.h"

using namespace exo2;
using baselines::RefLib;

static int
proc_lines(const ProcPtr& p)
{
    int n = 0;
    std::string s = print_proc(p);
    for (char c : s) {
        if (c == '\n')
            n++;
    }
    return n;
}

int
main()
{
    std::printf("Figure 9b: primitive rewrites per kernel family "
                "(all configurations)\n\n");
    const Machine& m = machine_avx2();

    // Group kernel variants by family (asum -> sasum + dasum, ...).
    std::map<std::string, std::vector<const kernels::KernelDef*>> fams;
    for (const auto& k : kernels::blas_level1())
        fams[k.name.substr(1)].push_back(&k);
    for (const auto& k : kernels::blas_level2()) {
        std::string base = k.name.substr(1);
        auto cut = base.find('_');
        fams[cut == std::string::npos ? base : base.substr(0, cut)]
            .push_back(&k);
    }

    int64_t total_obj = 0;
    int64_t total_gen = 0;
    std::printf("%-12s %10s %12s %12s\n", "kernel", "rewrites",
                "obj lines", "gen C lines");
    for (const auto& [fam, defs] : fams) {
        int64_t rewrites = 0;
        int64_t obj = 0;
        int64_t gen = 0;
        for (const auto* k : defs) {
            ScheduleStats::reset();
            ProcPtr s;
            try {
                s = k->triangular
                        ? baselines::scheduled_level2(*k, m, RefLib::Exo2)
                        : (k->proc->find_arg("M") ||
                                   k->proc->find_arg("N")
                               ? baselines::scheduled_level2(*k, m,
                                                             RefLib::Exo2)
                               : baselines::scheduled_level1(
                                     *k, m, RefLib::Exo2));
            } catch (const std::exception& e) {
                std::printf("  (%s failed: %s)\n", k->name.c_str(),
                            e.what());
                continue;
            }
            rewrites += ScheduleStats::rewrites();
            obj += proc_lines(k->proc);
            gen += codegen_c_lines(s);
        }
        total_obj += obj;
        total_gen += gen;
        std::printf("%-12s %10lld %12lld %12lld\n", fam.c_str(),
                    static_cast<long long>(rewrites),
                    static_cast<long long>(obj),
                    static_cast<long long>(gen));
    }
    std::printf("\nFigure 9a totals: %lld object lines -> %lld generated "
                "C lines\n",
                static_cast<long long>(total_obj),
                static_cast<long long>(total_gen));
    std::printf("(Scheduling library sources: see `wc -l src/sched/*` — "
                "shared across every kernel above.)\n");
    return 0;
}
