/**
 * @file
 * Figures 17, 18, 19: BLAS level-2 heatmaps — reference-model runtime
 * over Exo 2's across size buckets (paper: 10^0..10^5; we sweep
 * 10^0..10^2.5 — the crossover to parity falls inside this range).
 */

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"

using namespace exo2;
using baselines::RefLib;

static std::map<std::string, int64_t>
sizes_for(const kernels::KernelDef& k, int64_t n)
{
    std::map<std::string, int64_t> out;
    if (k.proc->find_arg("M"))
        out["M"] = n;
    if (k.proc->find_arg("N"))
        out["N"] = n;
    return out;
}

static bool
in_subset(const std::string& name)
{
    static const char* subset[] = {"sgemv_n", "sgemv_t", "sger",
                                   "ssymv_l", "ssyr_l",  "ssyr2_l",
                                   "strmv_lnn", "strmv_unn", "strsv_lnn",
                                   "dgemv_n", "dtrmv_lnn", "dtrsv_lnn"};
    for (const char* n : subset) {
        if (name == n)
            return true;
    }
    return false;
}

static void
run_machine(const Machine& m, bool full)
{
    std::vector<int64_t> sizes{1, 10, 100, 316};
    std::vector<std::string> cols{"10^0", "10^1", "10^2", "10^2.5"};
    for (RefLib lib : {RefLib::OpenBLAS, RefLib::MKL, RefLib::BLIS}) {
        std::vector<std::string> rows;
        std::vector<std::vector<double>> cells;
        for (const auto& k : kernels::blas_level2()) {
            if (!full && !in_subset(k.name))
                continue;
            ProcPtr ours;
            ProcPtr ref;
            try {
                ours = baselines::scheduled_level2(k, m, RefLib::Exo2);
                ref = baselines::scheduled_level2(k, m, lib);
            } catch (const std::exception& e) {
                std::printf("  (skipping %s: %s)\n", k.name.c_str(),
                            e.what());
                continue;
            }
            std::vector<double> row;
            for (int64_t n : sizes) {
                double a = bench::cycles(ref, sizes_for(k, n),
                                         baselines::cost_config_for(lib));
                double b = bench::cycles(
                    ours, sizes_for(k, n),
                    baselines::cost_config_for(RefLib::Exo2));
                row.push_back(b > 0 ? a / b : 1.0);
            }
            rows.push_back(k.name);
            cells.push_back(std::move(row));
        }
        bench::print_heatmap("Runtime of " + baselines::ref_lib_name(lib) +
                                 " / Exo 2 (" + m.name() + "), level 2",
                             rows, cols, cells);
    }
}

int
main(int argc, char** argv)
{
    // Default: the full 50-variant sweep on AVX2 and a representative
    // 12-variant sweep on AVX512 (scheduling cost dominates the
    // harness budget); pass --full for both machines complete.
    bool full512 = argc > 1 && std::string(argv[1]) == "--full";
    std::printf("Figures 17/18/19: BLAS level-2 vs reference models\n");
    run_machine(machine_avx2(), true);
    run_machine(machine_avx512(), full512);
    return 0;
}
