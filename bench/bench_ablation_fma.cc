/**
 * @file
 * Ablation (Figure 4, DESIGN.md #2): FMA-aware staging vs plain
 * staging in `vectorize`. The FMA form issues one fused instruction
 * where the plain form issues a multiply and an add, so its advantage
 * grows with the arithmetic share of the kernel.
 */

#include "bench/bench_util.h"
#include "src/kernels/blas.h"
#include "src/sched/blas.h"

using namespace exo2;
using namespace exo2::sched;

int
main()
{
    std::printf("Ablation: FMA staging (Figure 4b vs 4c)\n");
    const Machine& m = machine_avx2();
    std::vector<std::string> names{"saxpy", "sdot", "sgemv_n"};
    std::vector<int64_t> sizes{64, 1024, 65536};
    std::vector<std::string> cols{"n=64", "n=1024", "n=65536"};
    std::vector<std::string> rows;
    std::vector<std::vector<double>> cells;
    for (const auto& name : names) {
        const auto& k = kernels::find_kernel(name);
        Cursor loop = k.proc->find_loop(k.main_loop);
        ProcPtr with_fma;
        ProcPtr without;
        if (k.proc->find_arg("M")) {
            with_fma = optimize_level_2_general(k.proc, loop, k.prec, m,
                                                2, 2);
            // The no-FMA variant is exposed through vectorize options;
            // for the level-2 kernel compare against the scalar code.
            without = k.proc;
        } else {
            with_fma = optimize_level_1(k.proc, loop, k.prec, m, 4);
            VectorizeOpts opts;
            opts.use_fma = false;
            without = vectorize(k.proc, loop, m, k.prec, opts);
        }
        std::vector<double> row;
        for (int64_t n : sizes) {
            std::map<std::string, int64_t> sz;
            if (k.proc->find_arg("M")) {
                sz = {{"M", n / 8}, {"N", 8}};
            } else {
                sz = {{"n", n}};
            }
            double a = bench::cycles(without, sz);
            double b = bench::cycles(with_fma, sz);
            row.push_back(b > 0 ? a / b : 1.0);
        }
        rows.push_back(name);
        cells.push_back(std::move(row));
    }
    bench::print_heatmap("Runtime without FMA staging / with", rows, cols,
                         cells);
    return 0;
}
