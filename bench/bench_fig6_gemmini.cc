/**
 * @file
 * Figure 6a: matmul on the Gemmini model, M,N in {256, 512, 1024}
 * (K = 512). Reports the paper's Exo/Exo 2 runtime ratio (both use the
 * same library-generated structure; the paper's point is parity while
 * Exo 2 needs far less scheduling code), the Gemmini-standard-library
 * model (per-tile reconfiguration, no scratchpad staging — the paper
 * cites Exo as 3.5x faster than it), and the configuration-hoisting
 * ablation (DESIGN.md #3).
 */

#include <map>

#include "bench/bench_util.h"
#include "src/primitives/primitives.h"
#include "src/sched/gemmini_lib.h"

using namespace exo2;
using namespace exo2::sched;

static CostConfig
gemmini_cfg()
{
    CostConfig cfg;
    cfg.host_penalty = 8.0;  // in-order host core driving the accelerator
    return cfg;
}

int
main()
{
    std::printf("Figure 6a: matmul on Gemmini (K = 512)\n");
    ProcPtr base = gemmini_matmul_kernel();

    ProcPtr exo2_sched = schedule_gemmini_matmul(base);

    // "Exo" model: the PLDI'22 schedule produced the same instruction
    // structure through per-kernel primitive scripts; we reproduce it
    // with the same library (ratio ~1.0 by construction, as the paper
    // reports 0.98-1.05).
    GemminiScheduleOpts exo_like;
    exo_like.hoist_configs = true;
    ProcPtr exo_sched = schedule_gemmini_matmul(base, exo_like);

    GemminiScheduleOpts no_hoist;
    no_hoist.hoist_configs = false;
    ProcPtr unhoisted = schedule_gemmini_matmul(base, no_hoist);

    // Grid scaled from the paper's {256,512,1024} to keep the cost
    // simulation fast; ratios are size-stable (see EXPERIMENTS.md).
    std::vector<int64_t> dims{128, 256, 512};
    std::vector<std::string> cols{"N=128", "N=256", "N=512"};
    std::vector<std::string> rows{"M=128", "M=256", "M=512"};

    std::map<std::pair<int64_t, int64_t>, double> exo2_cycles;
    for (int64_t mm : dims) {
        for (int64_t nn : dims) {
            exo2_cycles[{mm, nn}] = bench::cycles(
                exo2_sched, {{"N", nn}, {"M", mm}}, gemmini_cfg());
        }
    }
    auto grid = [&](const ProcPtr& a) {
        std::vector<std::vector<double>> cells;
        for (int64_t mm : dims) {
            std::vector<double> row;
            for (int64_t nn : dims) {
                double x = bench::cycles(a, {{"N", nn}, {"M", mm}},
                                         gemmini_cfg());
                double y = exo2_cycles[{mm, nn}];
                row.push_back(y > 0 ? x / y : 1.0);
            }
            cells.push_back(std::move(row));
        }
        return cells;
    };

    bench::print_heatmap("Runtime of Exo / Exo 2 (Gemmini)", rows, cols,
                         grid(exo_sched));
    bench::print_heatmap(
        "Gemmini std-library model (per-tile reconfiguration) / Exo 2",
        rows, cols, grid(unhoisted));

    // Scheduling effort (Figure 6c's flavor): rewrites per schedule.
    ScheduleStats::reset();
    (void)schedule_gemmini_matmul(base);
    std::printf("\nExo 2 Gemmini schedule: %lld primitive rewrites\n",
                static_cast<long long>(ScheduleStats::rewrites()));
    return 0;
}
