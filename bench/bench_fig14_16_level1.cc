/**
 * @file
 * Figures 14, 15, 16: BLAS level-1 heatmaps — runtime of each reference
 * library model divided by Exo 2's, on AVX2 and AVX512, over
 * power-of-4 size buckets. Higher is better for Exo 2; the paper's
 * shape is near-1.0 parity at large N and >1 wins at small N.
 */

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"

using namespace exo2;
using baselines::RefLib;

static void
run_machine(const Machine& m, int max_pow)
{
    std::vector<int64_t> sizes;
    std::vector<std::string> cols;
    for (int p = 0; p <= max_pow; p++) {
        sizes.push_back(1ll << (2 * p));
        cols.push_back("4^" + std::to_string(p));
    }
    for (RefLib lib : {RefLib::OpenBLAS, RefLib::MKL, RefLib::BLIS}) {
        std::vector<std::string> rows;
        std::vector<std::vector<double>> cells;
        for (const auto& k : kernels::blas_level1()) {
            ProcPtr ours = baselines::scheduled_level1(k, m, RefLib::Exo2);
            ProcPtr ref = baselines::scheduled_level1(k, m, lib);
            std::vector<double> row;
            for (int64_t n : sizes) {
                double a = bench::cycles(ref, {{"n", n}},
                                         baselines::cost_config_for(lib));
                double b = bench::cycles(
                    ours, {{"n", n}},
                    baselines::cost_config_for(RefLib::Exo2));
                row.push_back(b > 0 ? a / b : 1.0);
            }
            rows.push_back(k.name);
            cells.push_back(std::move(row));
        }
        bench::print_heatmap("Runtime of " + baselines::ref_lib_name(lib) +
                                 " / Exo 2 (" + m.name() + "), level 1",
                             rows, cols, cells);
    }
}

int
main()
{
    std::printf("Figures 14/15/16: BLAS level-1 vs reference models\n");
    run_machine(machine_avx2(), 8);
    run_machine(machine_avx512(), 8);
    return 0;
}
