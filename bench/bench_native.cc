/**
 * @file
 * Native GFLOP/s benchmark (DESIGN.md §5): compile each scheduled
 * kernel twice with the in-process JIT — once as portable scalar C,
 * once with AVX2/AVX-512 intrinsics codegen — run both on identical
 * inputs, and record achieved GFLOP/s into BENCH_native_gflops.json.
 * This is the wall-clock counterpart of the cost-simulator figures:
 * it shows the instruction-library lowering reaching real vector
 * units, not just modeled ones.
 *
 * Usage: bench_native [output.json]
 * (exits 0 with a "skipped" record on CPUs without AVX2)
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/machine/machine.h"
#include "src/sched/blas.h"
#include "src/sched/gemm.h"
#include "src/sched/halide.h"
#include "src/verify/verify.h"

#include "bench/bench_util.h"

namespace {

using namespace exo2;
using verify::CompiledProc;
using verify::NativeIsa;
using verify::OracleInputs;
using verify::SizeEnv;

struct Case
{
    std::string name;
    ProcPtr scheduled;
    SizeEnv env;
    double flops;  ///< useful floating-point ops per call
};

using bench::env_str;

/** GFLOP/s of one build (CompiledProc::time_per_call calibrates an
 *  iteration count targeting ~150 ms of kernel time). */
double
measure_gflops(const CompiledProc& cp, const OracleInputs& in,
               double flops)
{
    return flops / std::max(cp.time_per_call(in.args), 1e-12) / 1e9;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string out_path =
        argc > 1 ? argv[1] : "BENCH_native_gflops.json";
    std::ostringstream out;

    if (!verify::cjit_cpu_supports(NativeIsa::Avx2)) {
        bench::write_file_atomic(
            out_path, "{\n  \"skipped\": \"CPU has no AVX2+FMA\"\n}\n");
        std::cerr << "bench_native: CPU has no AVX2+FMA; skipped\n";
        return 0;
    }
    // Kernels are scheduled for the AVX2 machine (runs everywhere the
    // native gate passes); the ISA ceiling only affects codegen flags.
    NativeIsa isa = NativeIsa::Avx2;
    const Machine& m = machine_avx2();

    std::vector<Case> cases;
    const int64_t n = 1 << 16;
    for (const char* name : {"saxpy", "sdot", "sasum", "dscal"}) {
        const auto& k = kernels::find_kernel(name);
        Case c;
        c.name = name;
        c.scheduled = sched::optimize_level_1(
            k.proc, k.proc->find_loop(k.main_loop), k.prec, m, 2);
        c.env = {{"n", n}};
        // saxpy/sdot: 2n; sasum: n adds + n abs; dscal: n muls.
        c.flops = (c.name == "dscal") ? static_cast<double>(n)
                                      : 2.0 * static_cast<double>(n);
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "sgemm";
        ProcPtr base = kernels::sgemm();
        ProcPtr p = sched::sgemm_with_asserts(base, m);
        c.scheduled = sched::schedule_sgemm(p, m);
        c.env = {{"M", 192}, {"N", 192}, {"K", 192}};
        c.flops = 2.0 * 192.0 * 192.0 * 192.0;
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "blur";
        c.scheduled =
            sched::schedule_blur_like_halide(kernels::blur(), m);
        int64_t H = 64, W = 512;
        c.env = {{"H", H}, {"W", W}};
        // Two 3-tap passes: 2 adds + 1 mul each, (H+2)*W + H*W sites.
        c.flops = 3.0 * static_cast<double>((H + 2) * W + H * W);
        cases.push_back(c);
    }

    out << "{\n  \"description\": \"scalar vs native-intrinsics GFLOP/s "
           "of JIT-compiled scheduled kernels (see bench/README.md)\",\n";
    out << "  \"isa\": \"avx2\",\n  \"kernels\": [\n";
    bool first = true;
    int wins = 0;
    for (const Case& c : cases) {
        OracleInputs inputs =
            verify::make_inputs(c.scheduled, c.env, 4242);
        // Iterated in-place kernels (dscal: x *= a every call) drive
        // values into denormals when |a| < 1, and denormal arithmetic
        // is orders of magnitude slower than the vector units being
        // measured. Pin scalar args to 1.0 so magnitudes stay put.
        for (auto& a : inputs.args) {
            if (a.kind == RunArg::Kind::Scalar)
                a.scalar = 1.0;
        }
        CompiledProc scalar(c.scheduled, NativeIsa::Scalar);
        CompiledProc native(c.scheduled, isa);
        if (!native.is_native()) {
            std::cerr << c.name << ": native gate did not engage\n";
            return 1;
        }
        double gs = measure_gflops(scalar, inputs, c.flops);
        double gn = measure_gflops(native, inputs, c.flops);
        double speedup = gn / gs;
        if (speedup > 1.0)
            wins++;
        std::cerr.setf(std::ios::fixed);
        std::cerr.precision(2);
        std::cerr << c.name << " (" << env_str(c.env) << "): scalar "
                  << gs << " GFLOP/s, native " << gn << " GFLOP/s ("
                  << speedup << "x)\n";
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"sizes\": \"%s\", "
                      "\"flops_per_call\": %.0f, "
                      "\"scalar_gflops\": %.3f, \"native_gflops\": %.3f, "
                      "\"speedup\": %.2f}",
                      c.name.c_str(), env_str(c.env).c_str(), c.flops,
                      gs, gn, speedup);
        out << (first ? "" : ",\n") << buf;
        first = false;
    }
    out << "\n  ],\n  \"native_faster_count\": " << wins << "\n}\n";
    if (!bench::write_file_atomic(out_path, out.str())) {
        std::cerr << "failed to write " << out_path << "\n";
        return 3;
    }
    std::cerr << "wrote " << out_path << " (" << wins << "/"
              << cases.size() << " kernels faster native)\n";
    return wins >= 3 ? 0 : 2;
}
