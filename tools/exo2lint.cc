/**
 * @file
 * exo2lint — the static schedule-safety analyzer CLI (DESIGN.md §9).
 *
 *   exo2lint [--json] [--script FILE|-] [--quiet] <kernel>
 *   exo2lint [--json] --all
 *   exo2lint --list-rules
 *
 * <kernel> is a registry name (saxpy, dgemv_n, ...) or one of the demo
 * kernels (sgemm, blur, unsharp). --script replays a recorded schedule
 * script (the autotuner's `op[n,...;s,...]` line format, `-` = stdin)
 * onto the kernel before linting, so a tuned candidate can be vetted
 * exactly as the tuner's pre-JIT gate does. --all lints every registry
 * kernel plus the demo kernels (the soundness sweep's first half).
 *
 * Exit codes: 0 = no Error-level findings, 1 = at least one Error,
 * 2 = usage / unknown kernel / script replay failure.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/ir/errors.h"
#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/lint/lint.h"
#include "src/tune/tune.h"
#include "src/verify/fuzz.h"

namespace {

using namespace exo2;

ProcPtr
resolve_kernel(const std::string& name)
{
    if (name == "sgemm")
        return kernels::sgemm();
    if (name == "blur")
        return kernels::blur();
    if (name == "unsharp")
        return kernels::unsharp();
    return kernels::find_kernel(name).proc;
}

std::vector<verify::FuzzStep>
load_script(const std::string& path)
{
    std::string text;
    if (path == "-") {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    } else {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "exo2lint: cannot read script '" << path << "'\n";
            std::exit(2);
        }
        std::stringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    return verify::script_from_string(text);
}

void
list_rules()
{
    std::cout <<
        "EXL001 warn  bounds: access not provably in-bounds\n"
        "EXL002 error bounds: access provably out-of-bounds (reachable)\n"
        "EXL003 warn  bounds: access with unknown or mismatched shape\n"
        "EXL004 warn  bounds: allocation extent not provably nonnegative\n"
        "EXL101 warn  init: read of a never-written allocation\n"
        "EXL201 error race: parallel loop carries a cross-iteration "
        "conflict\n"
        "EXL202 info  race: nested parallel loops\n"
        "EXL301 info  hygiene: allocation never used\n"
        "EXL302 info  hygiene: allocation written but never read\n"
        "EXL303 info  hygiene: provably zero-trip loop\n"
        "EXL304 info  hygiene: provably single-trip loop\n"
        "EXL305 info  hygiene: masked vector op without a predicated "
        "ALU\n";
}

int
lint_one(const std::string& name, const ProcPtr& p, bool json, bool quiet)
{
    lint::LintReport rep = lint::lint_proc(p);
    if (json) {
        std::cout << rep.to_json() << "\n";
    } else {
        std::string text = rep.to_text();
        if (!text.empty())
            std::cout << text;
        if (!quiet) {
            std::cout << name << ": " << rep.count(lint::Severity::Error)
                      << " error(s), " << rep.count(lint::Severity::Warn)
                      << " warning(s), " << rep.count(lint::Severity::Info)
                      << " info(s); " << rep.proven << "/"
                      << rep.obligations << " bounds obligations proven"
                      << (rep.proven_safe() ? "; proven safe" : "")
                      << "\n";
        }
    }
    return rep.has_errors() ? 1 : 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool json = false;
    bool all = false;
    bool quiet = false;
    std::string script_path;
    std::string kernel;

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto need = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "exo2lint: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--json") {
            json = true;
        } else if (a == "--all") {
            all = true;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--script") {
            script_path = need("--script");
        } else if (a == "--list-rules") {
            list_rules();
            return 0;
        } else if (a == "--help" || a == "-h") {
            std::cerr << "usage: exo2lint [--json] [--quiet] "
                         "[--script FILE|-] <kernel>\n"
                         "       exo2lint [--json] --all\n"
                         "       exo2lint --list-rules\n";
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "exo2lint: unknown flag '" << a << "'\n";
            return 2;
        } else {
            kernel = a;
        }
    }

    if (all) {
        int worst = 0;
        auto run = [&](const std::string& name, const ProcPtr& p) {
            int rc = lint_one(name, p, json, quiet);
            if (rc > worst)
                worst = rc;
        };
        for (const auto& k : kernels::blas_level1())
            run(k.name, k.proc);
        for (const auto& k : kernels::blas_level2())
            run(k.name, k.proc);
        run("sgemm", kernels::sgemm());
        run("blur", kernels::blur());
        run("unsharp", kernels::unsharp());
        return worst;
    }

    if (kernel.empty()) {
        std::cerr << "exo2lint: no kernel given (try --help)\n";
        return 2;
    }

    ProcPtr p;
    try {
        p = resolve_kernel(kernel);
    } catch (const std::exception& e) {
        std::cerr << "exo2lint: unknown kernel '" << kernel << "': "
                  << e.what() << "\n";
        return 2;
    }

    if (!script_path.empty()) {
        try {
            auto script = load_script(script_path);
            p = tune::replay_script(p, script);
        } catch (const std::exception& e) {
            std::cerr << "exo2lint: script replay failed: " << e.what()
                      << "\n";
            return 2;
        }
    }

    return lint_one(kernel, p, json, quiet);
}
