/**
 * @file
 * exo2trace — run a tune (or replay a schedule script) under the span
 * tracer and print a per-phase time breakdown (DESIGN.md §10).
 *
 *   exo2trace tune   [--kernel K] [--sizes S] [--machine M]
 *                    [--beam N] [--rounds N] [--restarts N]
 *                    [--jit-topk N] [--validate 0|1]
 *                    [--json] [--out trace.json]
 *   exo2trace replay --script FILE [--kernel K] [--sizes S]
 *                    [--json] [--out trace.json]
 *   exo2trace --overhead
 *
 * `--out` writes a Chrome trace-event file loadable in
 * https://ui.perfetto.dev; without it the trace stays in memory and
 * only the breakdown is printed.
 *
 * `--overhead` is the CI gate behind scripts/check_obs.sh: it proves
 * (a) a traced tune captures a non-vacuous number of spans (>= 1000)
 * and (b) the tracing-off fast path costs < 2% of the same workload's
 * wall clock even if every captured span were a disabled-span probe.
 * The second bound is computed from a measured per-disabled-span unit
 * cost times the span count — deterministic, no flaky A/B timing.
 *
 * Exit codes: 0 = success (overhead: both bounds hold), 1 = gate
 * failure, 2 = usage error.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/ir/errors.h"
#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/machine/machine.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/tune/tune.h"
#include "src/verify/fuzz.h"

namespace {

using namespace exo2;

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

ProcPtr
resolve_kernel(const std::string& name)
{
    if (name == "sgemm")
        return kernels::sgemm();
    if (name == "blur")
        return kernels::blur();
    if (name == "unsharp")
        return kernels::unsharp();
    return kernels::find_kernel(name).proc;
}

verify::SizeEnv
parse_sizes(const std::string& text)
{
    verify::SizeEnv env;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string pair = text.substr(pos, comma - pos);
        size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            std::cerr << "exo2trace: bad sizes '" << text
                      << "' (want name=value,...)\n";
            std::exit(2);
        }
        env[pair.substr(0, eq)] = std::stoll(pair.substr(eq + 1));
        pos = comma + 1;
    }
    return env;
}

std::vector<verify::FuzzStep>
load_script(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "exo2trace: cannot read script '" << path << "'\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    return verify::script_from_string(ss.str());
}

void
print_breakdown(const std::string& kernel, double wall_ms,
                const obs::PhaseBreakdown& pb, bool json,
                const std::string& out_path)
{
    double attributed_ms = pb.total() * 1000.0;
    double other_ms = wall_ms - attributed_ms;
    if (other_ms < 0)
        other_ms = 0;
    if (json) {
        std::ostringstream os;
        os << "{\"kernel\":\"" << kernel << "\",\"wall_ms\":";
        char buf[32];
        auto num = [&](double v) {
            std::snprintf(buf, sizeof(buf), "%.3f", v);
            os << buf;
        };
        num(wall_ms);
        os << ",\"phases\":{";
        for (int i = 0; i < obs::kNumPhases; i++) {
            if (i)
                os << ",";
            os << "\"" << obs::phase_name(static_cast<obs::Phase>(i))
               << "_ms\":";
            num(pb.seconds[i] * 1000.0);
        }
        os << "},\"unattributed_ms\":";
        num(other_ms);
        os << ",\"spans\":" << obs::trace_span_count()
           << ",\"spans_dropped\":" << obs::trace_dropped();
        if (!out_path.empty())
            os << ",\"trace\":\"" << out_path << "\"";
        os << "}";
        std::cout << os.str() << "\n";
        return;
    }
    std::printf("%s: %.3f ms wall\n", kernel.c_str(), wall_ms);
    for (int i = 0; i < obs::kNumPhases; i++) {
        double ms = pb.seconds[i] * 1000.0;
        if (ms <= 0)
            continue;
        std::printf("  %-9s %10.3f ms  (%5.1f%%)\n",
                    obs::phase_name(static_cast<obs::Phase>(i)), ms,
                    wall_ms > 0 ? 100.0 * ms / wall_ms : 0.0);
    }
    std::printf("  %-9s %10.3f ms  (%5.1f%%)\n", "unattrib.", other_ms,
                wall_ms > 0 ? 100.0 * other_ms / wall_ms : 0.0);
    std::printf("  spans: %llu captured, %llu dropped\n",
                static_cast<unsigned long long>(obs::trace_span_count()),
                static_cast<unsigned long long>(obs::trace_dropped()));
    if (!out_path.empty())
        std::printf("  trace: %s (open in https://ui.perfetto.dev)\n",
                    out_path.c_str());
}

/** The overhead gate's workload: a small deterministic tune, the
 *  shape of one BENCH_schedule_time kernel's search. */
double
run_workload(const ProcPtr& p)
{
    tune::TuneOpts opts;
    opts.tune_sizes = parse_sizes("n=4096");
    opts.beam_width = 8;
    opts.max_rounds = 8;
    opts.random_restarts = 10;
    opts.jit_topk = 0;
    opts.validate = false;
    opts.use_cache = false;
    double t0 = now_seconds();
    tune::TuneResult r = tune::autotune(p, find_machine("AVX2"), opts);
    (void)r;
    return now_seconds() - t0;
}

int
overhead_gate()
{
    ProcPtr p = resolve_kernel("saxpy");

    // (1) Wall clock of the workload with tracing off (warm once so
    // the engine's memo caches are in the same state for both runs).
    obs::trace_stop();
    run_workload(p);
    double t_off = run_workload(p);

    // (2) The same workload traced: span capture must be non-vacuous.
    obs::trace_clear();
    obs::trace_start();
    run_workload(p);
    obs::trace_stop();
    uint64_t spans = obs::trace_span_count() + obs::trace_dropped();
    std::printf("overhead gate: workload %.3f ms off, %llu spans on\n",
                t_off * 1000.0,
                static_cast<unsigned long long>(spans));
    if (spans < 1000) {
        std::printf("FAIL: expected >= 1000 spans (vacuous gate)\n");
        return 1;
    }

    // (3) Price of the disabled fast path, measured directly: a tight
    // loop of disabled EXO2_SPANs. `volatile` keeps the loop alive.
    constexpr int kProbes = 1 << 20;
    volatile int sink = 0;
    double p0 = now_seconds();
    for (int i = 0; i < kProbes; i++) {
        EXO2_SPAN("obs.probe");
        sink = sink + 1;
    }
    double per_span = (now_seconds() - p0) / kProbes;

    // Even charging every captured span at the disabled-path price,
    // the workload must stay under the 2% budget.
    double overhead = per_span * static_cast<double>(spans);
    double pct = 100.0 * overhead / t_off;
    std::printf(
        "overhead gate: %.1f ns/disabled-span x %llu spans = %.3f ms "
        "(%.3f%% of workload, budget 2%%)\n",
        per_span * 1e9, static_cast<unsigned long long>(spans),
        overhead * 1000.0, pct);
    if (pct >= 2.0) {
        std::printf("FAIL: disabled-tracing overhead above budget\n");
        return 1;
    }
    std::printf("overhead gate OK\n");
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string mode = "tune";
    std::string kernel = "saxpy";
    std::string sizes = "n=4096";
    std::string machine = "AVX2";
    std::string script_path;
    std::string out_path;
    bool json = false;
    tune::TuneOpts opts;
    opts.jit_topk = 0;
    opts.validate = false;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); i++) {
        const std::string& a = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size()) {
                std::cerr << "exo2trace: " << a << " needs a value\n";
                std::exit(2);
            }
            return args[++i];
        };
        if (a == "tune" || a == "replay")
            mode = a;
        else if (a == "--overhead")
            mode = "overhead";
        else if (a == "--kernel")
            kernel = next();
        else if (a == "--sizes")
            sizes = next();
        else if (a == "--machine")
            machine = next();
        else if (a == "--script")
            script_path = next();
        else if (a == "--out")
            out_path = next();
        else if (a == "--json")
            json = true;
        else if (a == "--beam")
            opts.beam_width = std::stoi(next());
        else if (a == "--rounds")
            opts.max_rounds = std::stoi(next());
        else if (a == "--restarts")
            opts.random_restarts = std::stoi(next());
        else if (a == "--jit-topk")
            opts.jit_topk = std::stoi(next());
        else if (a == "--validate")
            opts.validate = std::stoi(next()) != 0;
        else {
            std::cerr << "exo2trace: unknown argument '" << a << "'\n";
            return 2;
        }
    }

    try {
        if (mode == "overhead")
            return overhead_gate();

        ProcPtr p = resolve_kernel(kernel);
        obs::trace_start(out_path);
        obs::phase_begin_collection();
        double t0 = now_seconds();
        if (mode == "replay") {
            if (script_path.empty()) {
                std::cerr << "exo2trace: replay needs --script\n";
                return 2;
            }
            std::vector<verify::FuzzStep> script =
                load_script(script_path);
            obs::PhaseTimer pt(obs::Phase::Search);
            EXO2_SPAN("tune.replay", {{"proc", p->name()}});
            ProcPtr q = tune::replay_script(p, script);
            (void)q;
        } else {
            opts.tune_sizes = parse_sizes(sizes);
            tune::TuneResult r =
                tune::autotune(p, find_machine(machine), opts);
            (void)r;
        }
        double wall_ms = (now_seconds() - t0) * 1000.0;
        obs::PhaseBreakdown pb = obs::phase_end_collection();
        obs::trace_stop();
        if (!out_path.empty() && !obs::trace_flush(out_path)) {
            std::cerr << "exo2trace: cannot write '" << out_path
                      << "'\n";
            return 1;
        }
        print_breakdown(kernel, wall_ms, pb, json, out_path);
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "exo2trace: " << e.what() << "\n";
        return 2;
    }
}
