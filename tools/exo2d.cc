/**
 * @file
 * exo2d — the scheduling daemon (DESIGN.md §8).
 *
 * Serves tune/schedule requests over a unix-domain socket using the
 * persistent caches when EXO2_CACHE_DIR is set. Configuration comes
 * from EXO2_SERVE_* (see serve::ServeConfig::from_env) with a few
 * command-line overrides:
 *
 *   exo2d [--socket PATH] [--workers N] [--queue N] [--once]
 *
 * --once exits after the first graceful drain (shutdown request or
 * SIGTERM); the default is to keep serving until signalled.
 *
 * SIGTERM/SIGINT begin a drain: stop admitting (late arrivals get
 * `rejected`/"draining"), finish every queued request, flush is free
 * (cache writes are write-through), exit 0. SIGKILL is the crash-only
 * path: the next start self-heals the caches and reclaims the stale
 * socket file.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <string>

#include "src/ir/errors.h"
#include "src/serve/daemon.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
on_signal(int)
{
    // Only the flag is touched here (async-signal-safe); the main
    // thread polls it and runs the actual drain.
    g_stop = 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    using exo2::serve::Daemon;
    using exo2::serve::ServeConfig;

    ServeConfig cfg;
    try {
        cfg = ServeConfig::from_env();
    } catch (const std::exception& e) {
        std::cerr << "exo2d: " << e.what() << "\n";
        return 2;
    }

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto need = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "exo2d: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--socket") {
            cfg.socket_path = need("--socket");
        } else if (a == "--workers") {
            cfg.workers = std::atoi(need("--workers"));
        } else if (a == "--queue") {
            cfg.queue_capacity = std::atoi(need("--queue"));
        } else if (a == "--once") {
            // drain-once is the only mode; flag kept for symmetry
        } else if (a == "--help" || a == "-h") {
            std::cerr << "usage: exo2d [--socket PATH] [--workers N] "
                         "[--queue N]\n";
            return 0;
        } else {
            std::cerr << "exo2d: unknown flag '" << a << "'\n";
            return 2;
        }
    }
    if (cfg.workers < 1 || cfg.queue_capacity < 1) {
        std::cerr << "exo2d: --workers and --queue must be >= 1\n";
        return 2;
    }

    Daemon daemon(cfg);
    try {
        daemon.start();
    } catch (const std::exception& e) {
        std::cerr << "exo2d: " << e.what() << "\n";
        return 2;
    }

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    std::cerr << "exo2d: serving on " << cfg.socket_path << " ("
              << cfg.workers << " workers, queue "
              << cfg.queue_capacity << ")\n";
    // Serve until SIGTERM/SIGINT or a shutdown request starts a drain.
    while (!g_stop && !daemon.draining()) {
        struct timespec ts = {0, 100 * 1000 * 1000};
        nanosleep(&ts, nullptr);
    }
    daemon.stop();  // drain: finish the queue, then join every thread

    exo2::serve::ServeStats s = daemon.stats();
    std::cerr << "exo2d: drained; " << s.requests << " requests ("
              << s.completed << " ok, " << s.degraded << " degraded, "
              << s.rejected << " rejected, " << s.errors
              << " errors)\n";
    return 0;
}
