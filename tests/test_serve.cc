/**
 * @file
 * Scheduling-daemon tests (DESIGN.md §8): wire protocol round-trips,
 * an in-process Daemon exercised over a real unix-domain socket —
 * ping/stats, cold and cache-hit tunes, script replay, malformed
 * requests, backpressure under a saturated bounded queue, injected
 * queue_full faults, deadline degradation, graceful drain — and the
 * crash-only story: a forked daemon killed with SIGKILL, restarted,
 * and observed self-healing from the persistent caches.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache.h"
#include "src/serve/client.h"
#include "src/serve/daemon.h"
#include "src/serve/protocol.h"
#include "src/verify/sandbox.h"

namespace exo2 {
namespace serve {
namespace {

std::string
fresh_dir(const char* tag)
{
    std::string tmpl = ::testing::TempDir() + "exo2_serve_" + tag +
                       "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* d = mkdtemp(buf.data());
    EXPECT_NE(d, nullptr);
    return d ? d : "";
}

/** Unique, short socket path (sun_path is ~107 bytes). */
std::string
fresh_socket(const char* tag)
{
    static std::atomic<int> n{0};
    return "/tmp/exo2t_" + std::to_string(getpid()) + "_" + tag + "_" +
           std::to_string(n++) + ".sock";
}

ServeConfig
test_config(const char* tag)
{
    ServeConfig cfg;
    cfg.socket_path = fresh_socket(tag);
    cfg.workers = 2;
    cfg.queue_capacity = 16;
    return cfg;
}

ServeRequest
tune_request(const char* kernel = "saxpy", const char* sizes = "n=256")
{
    ServeRequest req;
    req.id = "t1";
    req.op = "tune";
    req.kernel = kernel;
    req.sizes = sizes;
    req.beam = 2;
    req.rounds = 3;
    req.restarts = 0;
    req.jit_topk = 0;
    return req;
}

class ServeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        for (const char* v :
             {"EXO2_CACHE_DIR", "EXO2_FAULTS", "EXO2_TUNE_DEADLINE",
              "EXO2_SERVE_SOCKET", "EXO2_SERVE_WORKERS",
              "EXO2_SERVE_QUEUE", "EXO2_SERVE_DEADLINE",
              "EXO2_SERVE_RETRIES"})
            unsetenv(v);
        cache::reset_cache_stats();
        verify::clear_fault_spec();
        verify::reset_fault_injection_counts();
    }
    void TearDown() override
    {
        unsetenv("EXO2_CACHE_DIR");
        unsetenv("EXO2_FAULTS");
    }
};

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST_F(ServeTest, EscapeRoundTripsScriptsWithNewlinesAndBackslashes)
{
    std::string v = "t_unroll[0]\nt_divide[1;a\\b,c,4]\n\\final\\";
    EXPECT_EQ(unescape_value(escape_value(v)), v);
    EXPECT_EQ(escape_value(v).find('\n'), std::string::npos);

    std::map<std::string, std::string> kv = {
        {"script", v}, {"op", "tune"}, {"empty", ""}};
    EXPECT_EQ(decode_kv(encode_kv(kv)), kv);
}

TEST_F(ServeTest, RequestAndResponseSurviveTheWire)
{
    ServeRequest req;
    req.id = "abc";
    req.op = "tune";
    req.kernel = "sgemm";
    req.machine = "AVX512";
    req.sizes = "K=48,M=48,N=48";
    req.deadline_ms = 1500;
    req.beam = 3;
    req.rounds = 7;
    req.restarts = 0;
    req.jit_topk = 2;
    req.validate = 1;
    req.script = "t_unroll[0]\nt_interleave[1,4]\n";
    ServeRequest back = ServeRequest::from_wire(req.to_wire());
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.machine, req.machine);
    EXPECT_EQ(back.sizes, req.sizes);
    EXPECT_DOUBLE_EQ(back.deadline_ms, req.deadline_ms);
    EXPECT_EQ(back.restarts, 0);
    EXPECT_EQ(back.jit_topk, 2);
    EXPECT_EQ(back.script, req.script);

    ServeResponse resp;
    resp.id = "abc";
    resp.status = "degraded";
    resp.detail = "deadline";
    resp.retry_after_ms = 250;
    resp.script = req.script;
    resp.cost = 864;
    resp.naive_cost = 3072;
    resp.validated = true;
    resp.from_cache = true;
    resp.extra["digest"] = "deadbeef";
    ServeResponse rback = ServeResponse::from_wire(resp.to_wire());
    EXPECT_TRUE(rback.degraded());
    EXPECT_EQ(rback.retry_after_ms, 250);
    EXPECT_EQ(rback.script, req.script);
    EXPECT_TRUE(rback.validated);
    EXPECT_TRUE(rback.from_cache);
    EXPECT_EQ(rback.extra.at("digest"), "deadbeef");
}

TEST_F(ServeTest, UnknownWireKeysArePreservedNotFatal)
{
    // A future daemon adds a field; today's client must not choke.
    ServeResponse r = ServeResponse::from_wire(
        "id=x\nstatus=ok\nfuture_field=hello\n");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.extra.at("future_field"), "hello");
}

TEST_F(ServeTest, FramingRejectsCorruptLengthPrefix)
{
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    ASSERT_TRUE(write_frame(sv[0], "hello frame", 1.0));
    std::string got;
    ASSERT_TRUE(read_frame(sv[1], &got, 1.0));
    EXPECT_EQ(got, "hello frame");

    // A corrupt 4-byte prefix claiming a 2 GB payload must fail fast,
    // not allocate.
    unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(write(sv[0], huge, 4), 4);
    EXPECT_FALSE(read_frame(sv[1], &got, 1.0));
    close(sv[0]);
    close(sv[1]);
}

TEST_F(ServeTest, ConfigFromEnvValidates)
{
    setenv("EXO2_SERVE_WORKERS", "3", 1);
    setenv("EXO2_SERVE_QUEUE", "9", 1);
    setenv("EXO2_SERVE_DEADLINE", "1.5", 1);
    ServeConfig c = ServeConfig::from_env();
    EXPECT_EQ(c.workers, 3);
    EXPECT_EQ(c.queue_capacity, 9);
    EXPECT_DOUBLE_EQ(c.default_deadline_seconds, 1.5);

    setenv("EXO2_SERVE_WORKERS", "0", 1);
    EXPECT_THROW(ServeConfig::from_env(), ConfigError);
    unsetenv("EXO2_SERVE_WORKERS");
    unsetenv("EXO2_SERVE_QUEUE");
    unsetenv("EXO2_SERVE_DEADLINE");
}

// ---------------------------------------------------------------------------
// In-process daemon over a real socket
// ---------------------------------------------------------------------------

TEST_F(ServeTest, PingAndStats)
{
    ServeConfig cfg = test_config("ping");
    Daemon d(cfg);
    d.start();

    ServeClient client(cfg.socket_path);
    ServeRequest req;
    req.id = "p1";
    req.op = "ping";
    ServeResponse resp;
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.id, "p1");
    EXPECT_EQ(resp.detail, "pong");

    req.op = "stats";
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.extra.at("connections"), "1");
    EXPECT_EQ(resp.extra.at("requests"), "2");
    ASSERT_TRUE(resp.extra.count("tune_cache_hits"));
    ASSERT_TRUE(resp.extra.count("faults_fired"));

    d.stop();
    EXPECT_FALSE(d.running());
    // The socket file is reclaimed on clean shutdown.
    EXPECT_NE(access(cfg.socket_path.c_str(), F_OK), 0);
}

TEST_F(ServeTest, TuneThenCacheHitIsBitForBit)
{
    std::string dir = fresh_dir("warm");
    setenv("EXO2_CACHE_DIR", dir.c_str(), 1);

    ServeConfig cfg = test_config("warm");
    Daemon d(cfg);
    d.start();
    ServeClient client(cfg.socket_path);

    ServeResponse cold;
    ASSERT_TRUE(client.call(tune_request(), &cold));
    ASSERT_TRUE(cold.ok()) << cold.detail;
    EXPECT_FALSE(cold.from_cache);
    EXPECT_TRUE(cold.validated);
    EXPECT_FALSE(cold.script.empty());
    EXPECT_LT(cold.cost, cold.naive_cost);

    ServeResponse warm;
    ASSERT_TRUE(client.call(tune_request(), &warm));
    ASSERT_TRUE(warm.ok()) << warm.detail;
    EXPECT_TRUE(warm.from_cache);
    EXPECT_TRUE(warm.validated);
    EXPECT_EQ(warm.script, cold.script);  // bit-for-bit replay
    EXPECT_DOUBLE_EQ(warm.cost, cold.cost);

    // The winner replays through op=schedule and reports a digest.
    ServeRequest rep;
    rep.id = "r1";
    rep.op = "schedule";
    rep.kernel = "saxpy";
    rep.sizes = "n=256";
    rep.script = warm.script;
    rep.validate = 1;
    ServeResponse replayed;
    ASSERT_TRUE(client.call(rep, &replayed));
    ASSERT_TRUE(replayed.ok()) << replayed.detail;
    EXPECT_TRUE(replayed.validated);
    EXPECT_FALSE(replayed.extra["digest"].empty());
    EXPECT_DOUBLE_EQ(replayed.cost, cold.cost);

    d.stop();
}

TEST_F(ServeTest, MalformedRequestsAnswerErrorNotDisconnect)
{
    ServeConfig cfg = test_config("err");
    Daemon d(cfg);
    d.start();
    ServeClient client(cfg.socket_path);

    ServeRequest req;
    req.id = "e1";
    req.op = "frobnicate";
    ServeResponse resp;
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.detail.find("frobnicate"), std::string::npos);

    req = tune_request("no_such_kernel");
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_EQ(resp.status, "error");

    req = tune_request("saxpy", "n=banana");
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.detail.find("banana"), std::string::npos);

    // The connection survived all three: ping still answers.
    req = ServeRequest();
    req.id = "e4";
    req.op = "ping";
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_TRUE(resp.ok());

    d.stop();
    EXPECT_EQ(d.stats().errors, 3u);
}

TEST_F(ServeTest, SaturatedQueueRejectsWithRetryHintNeverErrors)
{
    ServeConfig cfg = test_config("backpressure");
    cfg.workers = 1;
    cfg.queue_capacity = 1;  // 1 running + 1 queued; the rest bounce
    Daemon d(cfg);
    d.start();

    constexpr int kClients = 6;
    std::vector<ServeResponse> resps(kClients);
    std::vector<std::thread> ts;
    for (int i = 0; i < kClients; i++) {
        ts.emplace_back([&, i] {
            ServeClient client(cfg.socket_path);
            ServeRequest req = tune_request();
            req.id = "c" + std::to_string(i);
            // No cache dir: every tune is a real multi-hundred-ms
            // search, holding the single worker busy.
            ASSERT_TRUE(client.call(req, &resps[i]));
        });
    }
    for (auto& t : ts)
        t.join();

    int ok = 0, rejected = 0, other = 0;
    for (const ServeResponse& r : resps) {
        if (r.ok() || r.degraded())
            ok++;
        else if (r.rejected())
            rejected++;
        else
            other++;
    }
    // Exactly one response per request, every one a defined status,
    // backpressure engaged, and nothing failed.
    EXPECT_EQ(ok + rejected, kClients);
    EXPECT_EQ(other, 0);
    EXPECT_GE(rejected, 1);
    EXPECT_GE(ok, 1);  // whoever won admission completed
    for (const ServeResponse& r : resps) {
        if (r.rejected()) {
            EXPECT_GT(r.retry_after_ms, 0);
            EXPECT_NE(r.detail.find("queue full"), std::string::npos);
        }
    }
    d.stop();
    EXPECT_EQ(d.stats().errors, 0u);
}

TEST_F(ServeTest, InjectedQueueFullDrivesTheRealRejectionPath)
{
    ServeConfig cfg = test_config("inject");
    Daemon d(cfg);
    d.start();
    ServeClient client(cfg.socket_path);

    verify::set_fault_spec(
        verify::parse_fault_spec("seed=11,queue_full=1"));
    verify::reset_fault_injection_counts();
    ServeResponse resp;
    ASSERT_TRUE(client.call(tune_request(), &resp));
    EXPECT_TRUE(resp.rejected());
    EXPECT_GT(resp.retry_after_ms, 0);
    EXPECT_NE(resp.detail.find("injected"), std::string::npos);
    EXPECT_GE(verify::fault_injection_counts().queue_full, 1u);

    // Control ops bypass the queue: stats answers even while every
    // admission is being rejected.
    ServeRequest sreq;
    sreq.id = "s";
    sreq.op = "stats";
    ASSERT_TRUE(client.call(sreq, &resp));
    EXPECT_TRUE(resp.ok());
    EXPECT_GE(std::stoull(resp.extra.at("faults_fired")), 1ull);

    // Fault cleared: the same request now succeeds — rejection is a
    // state, not a scar.
    verify::clear_fault_spec();
    ASSERT_TRUE(client.call(tune_request(), &resp));
    EXPECT_TRUE(resp.ok()) << resp.detail;

    d.stop();
}

TEST_F(ServeTest, DeadlineProducesDegradedAnswerNotError)
{
    ServeConfig cfg = test_config("deadline");
    Daemon d(cfg);
    d.start();
    ServeClient client(cfg.socket_path);

    // 1 ms against a search that needs hundreds: the ladder must
    // answer something usable and flag it.
    ServeRequest req = tune_request();
    req.deadline_ms = 1;
    req.rounds = 8;
    req.restarts = 2;
    ServeResponse resp;
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_TRUE(resp.degraded()) << resp.status << ": " << resp.detail;
    EXPECT_NE(resp.detail.find("deadline"), std::string::npos);
    EXPECT_GT(resp.naive_cost, 0);

    // With no deadline the identical request completes ok.
    req.deadline_ms = 0;
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_TRUE(resp.ok()) << resp.detail;

    d.stop();
    EXPECT_EQ(d.stats().errors, 0u);
}

TEST_F(ServeTest, ShutdownRequestDrainsGracefully)
{
    ServeConfig cfg = test_config("drain");
    Daemon d(cfg);
    d.start();
    ServeClient client(cfg.socket_path);

    ServeRequest req;
    req.id = "bye";
    req.op = "shutdown";
    ServeResponse resp;
    ASSERT_TRUE(client.call(req, &resp));
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.detail, "draining");

    d.join();  // drain completes on its own; no stop() needed
    EXPECT_FALSE(d.running());
    EXPECT_NE(access(cfg.socket_path.c_str(), F_OK), 0);
}

TEST_F(ServeTest, QueuedWorkFinishesDuringDrain)
{
    ServeConfig cfg = test_config("drainwork");
    cfg.workers = 1;
    Daemon d(cfg);
    d.start();

    // One slow tune in flight, then a drain: the admitted request
    // must still get its answer before the daemon exits.
    ServeResponse resp;
    std::thread t([&] {
        ServeClient client(cfg.socket_path);
        ASSERT_TRUE(client.call(tune_request(), &resp));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    d.request_stop();
    t.join();
    EXPECT_TRUE(resp.ok() || resp.degraded())
        << resp.status << ": " << resp.detail;
    d.join();
}

// ---------------------------------------------------------------------------
// Crash-only: kill -9, restart, self-heal
// ---------------------------------------------------------------------------

/** Run a daemon in a forked child (its own process, so SIGKILL is
 *  real). The child serves until killed. */
pid_t
spawn_daemon_process(const ServeConfig& cfg)
{
    pid_t pid = fork();
    if (pid == 0) {
        Daemon d(cfg);
        try {
            d.start();
        } catch (...) {
            _exit(3);
        }
        for (;;)
            pause();
        _exit(0);  // unreachable
    }
    return pid;
}

bool
wait_for_socket(const std::string& path, double seconds = 5.0)
{
    for (int i = 0; i < static_cast<int>(seconds * 100); i++) {
        ServeClient probe(path, 1.0);
        if (probe.connect())
            return true;
        usleep(10 * 1000);
    }
    return false;
}

TEST_F(ServeTest, Kill9RestartSelfHeals)
{
    std::string dir = fresh_dir("kill9");
    setenv("EXO2_CACHE_DIR", dir.c_str(), 1);
    ServeConfig cfg = test_config("kill9");

    // Generation 1: populate the persistent caches.
    pid_t gen1 = spawn_daemon_process(cfg);
    ASSERT_GT(gen1, 0);
    ASSERT_TRUE(wait_for_socket(cfg.socket_path));

    ServeResponse cold;
    {
        ServeClient client(cfg.socket_path);
        ASSERT_TRUE(client.call(tune_request(), &cold));
        ASSERT_TRUE(cold.ok()) << cold.detail;
        ASSERT_FALSE(cold.script.empty());
    }

    // Kill -9 with a request in flight — the worst instant.
    std::thread inflight([&] {
        ServeClient client(cfg.socket_path);
        ServeRequest req = tune_request("sdot", "n=512");
        req.rounds = 8;
        req.restarts = 2;
        ServeResponse r;
        client.call(req, &r);  // transport failure expected
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    kill(gen1, SIGKILL);
    int st = 0;
    waitpid(gen1, &st, 0);
    ASSERT_TRUE(WIFSIGNALED(st));
    inflight.join();

    // Plant an orphan temp file as a stand-in for a write the kill
    // interrupted (deterministic evidence for the sweep).
    std::ofstream(dir + "/tune/zz.tune.tmp.999999999.1") << "orphan";

    // Generation 2: same socket path (stale file reclaimed), same
    // cache dir (swept + revalidated).
    pid_t gen2 = spawn_daemon_process(cfg);
    ASSERT_GT(gen2, 0);
    ASSERT_TRUE(wait_for_socket(cfg.socket_path));

    ServeClient client(cfg.socket_path);
    ServeResponse warm = client.call_with_retry(tune_request());
    ASSERT_TRUE(warm.ok()) << warm.status << ": " << warm.detail;
    EXPECT_TRUE(warm.from_cache);  // gen-1's winner survived the crash
    EXPECT_EQ(warm.script, cold.script);

    ServeRequest sreq;
    sreq.id = "s";
    sreq.op = "stats";
    ServeResponse stats;
    ASSERT_TRUE(client.call(sreq, &stats));
    EXPECT_GE(std::stoull(stats.extra.at("tmp_swept")), 1ull);
    EXPECT_GE(std::stoull(stats.extra.at("tune_cache_hits")), 1ull);

    kill(gen2, SIGKILL);
    waitpid(gen2, &st, 0);
    unlink(cfg.socket_path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace exo2
