/**
 * @file
 * GEMM scheduling tests (Section 6.2.3): structure and equivalence of
 * the register-tiled, vectorized SGEMM on both machines.
 */

#include <gtest/gtest.h>

#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/sched/gemm.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using sched::GemmConfig;
using sched::schedule_sgemm;
using sched::sgemm_with_asserts;
using testing_support::expect_equiv;

TEST(Gemm, ScheduleAvx2)
{
    ProcPtr base = kernels::sgemm();
    ProcPtr p = sgemm_with_asserts(base, machine_avx2());
    ProcPtr s;
    ASSERT_NO_THROW(s = schedule_sgemm(p, machine_avx2()));
    std::string printed = print_proc(s);
    EXPECT_NE(printed.find("mm256_fmadd_ps"), std::string::npos) << printed;
    EXPECT_NE(printed.find("C_reg"), std::string::npos);
    // Micro-kernel fully unrolled: several fma calls per k iteration.
    size_t count = 0;
    for (size_t pos = printed.find("mm256_fmadd_ps");
         pos != std::string::npos;
         pos = printed.find("mm256_fmadd_ps", pos + 1)) {
        count++;
    }
    EXPECT_GE(count, 8u);
    expect_equiv(p, s, {{"M", 8}, {"N", 16}, {"K", 5}}, 3e-3);
    expect_equiv(p, s, {{"M", 4}, {"N", 32}, {"K", 9}}, 3e-3);
}

TEST(Gemm, ScheduleAvx512)
{
    ProcPtr base = kernels::sgemm();
    ProcPtr p = sgemm_with_asserts(base, machine_avx512());
    ProcPtr s;
    ASSERT_NO_THROW(s = schedule_sgemm(p, machine_avx512()));
    EXPECT_NE(print_proc(s).find("mm512_fmadd_ps"), std::string::npos);
    expect_equiv(p, s, {{"M", 8}, {"N", 32}, {"K", 4}}, 3e-3);
}

TEST(Gemm, RejectsWithoutAsserts)
{
    // Perfect division is not provable without the assertions.
    EXPECT_THROW(schedule_sgemm(kernels::sgemm(), machine_avx2()),
                 SchedulingError);
}

}  // namespace
}  // namespace exo2
