/**
 * @file
 * Cursor navigation and pattern-find tests (Sections 2, 5.2): spatial
 * navigation, gaps/blocks, scoped find, `#k` selectors, and the error
 * taxonomy of Section 3.3.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/printer.h"
#include "src/primitives/primitives.h"

namespace exo2 {
namespace {

const char* kProg = R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
        y[i] = 2.0
    for i in seq(0, n):
        if i < 4:
            y[i] = x[i] * 3.0
)";

TEST(Cursors, NominalAndPatternAgree)
{
    ProcPtr p = parse_proc(kProg);
    EXPECT_TRUE(p->find_loop("i") == p->find("for i in _: _"));
}

TEST(Cursors, SelectorPicksKthMatch)
{
    ProcPtr p = parse_proc(kProg);
    Cursor second = p->find_loop("i #1");
    EXPECT_EQ(second.stmt()->body()[0]->kind(), StmtKind::If);
    EXPECT_TRUE(p->find_all("for i in _: _").size() == 2);
    EXPECT_THROW(p->find_loop("q"), SchedulingError);
}

TEST(Cursors, ScopedFindRestrictsSubtree)
{
    ProcPtr p = parse_proc(kProg);
    Cursor first_loop = p->find_loop("i");
    // Only one assign to y inside the first loop.
    auto matches = first_loop.find_all("y[_] = _");
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(print_expr(matches[0].stmt()->rhs()), "2.0");
}

TEST(Cursors, Navigation)
{
    ProcPtr p = parse_proc(kProg);
    Cursor x_assign = p->find("x[_] = _");
    EXPECT_EQ(x_assign.next().stmt()->name(), "y");
    EXPECT_EQ(x_assign.parent().stmt()->kind(), StmtKind::For);
    EXPECT_THROW(x_assign.prev(), InvalidCursorError);
    EXPECT_THROW(x_assign.parent().parent(), InvalidCursorError);
    // Gap and block cursors.
    Cursor gap = x_assign.after();
    EXPECT_EQ(gap.kind(), CursorKind::Gap);
    Cursor blk = x_assign.expand(0, 1);
    EXPECT_EQ(blk.block_size(), 2);
    EXPECT_EQ(blk[1].stmt()->name(), "y");
    EXPECT_THROW(x_assign.expand(1, 0), InvalidCursorError);
}

TEST(Cursors, ExpressionNavigation)
{
    ProcPtr p = parse_proc(kProg);
    Cursor mul = p->find("y[_] = x[_] * 3.0").rhs();
    EXPECT_EQ(mul.expr()->kind(), ExprKind::BinOp);
    Cursor loop = p->find_loop("i #1");
    EXPECT_EQ(print_expr(loop.hi().expr()), "n");
    EXPECT_EQ(print_expr(loop.body()[0].cond().expr()), "i < 4");
}

TEST(Cursors, ForwardAcrossUnrelatedProcFails)
{
    ProcPtr p = parse_proc(kProg);
    ProcPtr q = parse_proc(kProg);
    Cursor c = p->find_loop("i");
    EXPECT_THROW(q->forward(c), InvalidCursorError);
}

TEST(Cursors, CallAndConfigPatterns)
{
    ProcPtr callee = parse_proc(R"(
def work(dst: [f32][4] @ DRAM):
    for i in seq(0, 4):
        dst[i] = 0.0
)");
    ProcPtr p = parse_proc(R"(
def f(x: f32[8] @ DRAM):
    cfg.stride = 4
    work(x[0:4])
    work(x[4:8])
)",
                           {callee});
    EXPECT_EQ(p->find_all("work(_)").size(), 2u);
    EXPECT_EQ(p->find("cfg.stride = _").stmt()->kind(),
              StmtKind::WriteConfig);
    EXPECT_EQ(p->find_all("_(_)").size(), 2u);
}

}  // namespace
}  // namespace exo2
