/**
 * @file
 * Tests for loop-transformation primitives: each checks both the
 * resulting structure and interpreter equivalence, plus safety
 * rejection cases.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/primitives/primitives.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using testing_support::expect_equiv;

const char* kGemv = R"(
def gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    assert M % 8 == 0
    assert N % 8 == 0
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]
)";

const char* kAxpy = R"(
def axpy(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += a * x[i]
)";

TEST(DivideLoop, PerfectStructure)
{
    ProcPtr g = parse_proc(kGemv);
    ProcPtr g2 = divide_loop(g, "i", 8, {"io", "ii"},
                             TailStrategy::Perfect);
    Cursor io = g2->find_loop("io");
    EXPECT_EQ(print_expr(io.stmt()->hi()), "M / 8");
    Cursor ii = g2->find_loop("ii");
    EXPECT_EQ(print_expr(ii.stmt()->hi()), "8");
    expect_equiv(g, g2, {{"M", 16}, {"N", 8}});
}

TEST(DivideLoop, PerfectRejectsUnprovable)
{
    ProcPtr g = parse_proc(kGemv);
    EXPECT_THROW(divide_loop(g, "i", 3, {"io", "ii"},
                             TailStrategy::Perfect),
                 SchedulingError);
}

TEST(DivideLoop, GuardEquivalence)
{
    ProcPtr a = parse_proc(kAxpy);
    ProcPtr a2 = divide_loop(a, "i", 8, {"io", "ii"}, TailStrategy::Guard);
    // Guard strategy handles any n.
    expect_equiv(a, a2, {{"n", 13}});
    expect_equiv(a, a2, {{"n", 16}});
    expect_equiv(a, a2, {{"n", 1}});
}

TEST(DivideLoop, CutEquivalence)
{
    ProcPtr a = parse_proc(kAxpy);
    ProcPtr a2 = divide_loop(a, "i", 8, {"io", "ii"}, TailStrategy::Cut);
    EXPECT_EQ(a2->body_stmts().size(), 2u);
    expect_equiv(a, a2, {{"n", 13}});
    expect_equiv(a, a2, {{"n", 24}});
    expect_equiv(a, a2, {{"n", 7}});
}

TEST(DivideLoop, CutAndGuardEquivalence)
{
    ProcPtr a = parse_proc(kAxpy);
    ProcPtr a2 = divide_loop(a, "i", 4, {"io", "ii"},
                             TailStrategy::CutAndGuard);
    const StmtPtr& tail = a2->body_stmts()[1];
    EXPECT_EQ(tail->kind(), StmtKind::If);
    expect_equiv(a, a2, {{"n", 11}});
}

TEST(DivideLoop, ForwardingIntoBody)
{
    ProcPtr g = parse_proc(kGemv);
    Cursor red = g->find("y[_] += _");
    ProcPtr g2 = divide_loop(g, "i", 8, {"io", "ii"},
                             TailStrategy::Perfect);
    Cursor red2 = g2->forward(red);
    ASSERT_TRUE(red2.is_valid());
    EXPECT_EQ(red2.stmt()->kind(), StmtKind::Reduce);
    // The rewritten reduce now indexes via 8*io + ii.
    EXPECT_NE(print_stmt(red2.stmt()).find("io"), std::string::npos);
}

TEST(TilingLikeThePaper, Tile2DGemv)
{
    // Section 3.1: divide i, divide j, lift jo.
    ProcPtr g = parse_proc(kGemv);
    g = divide_loop(g, "i", 8, {"io", "ii"}, TailStrategy::Perfect);
    ProcPtr g0 = g;
    g = divide_loop(g, "j", 8, {"jo", "ji"}, TailStrategy::Perfect);
    g = lift_scope(g, "jo");
    // Expect loop order io, jo, ii, ji.
    const StmtPtr& io = g->body_stmts()[0];
    EXPECT_EQ(io->iter(), "io");
    EXPECT_EQ(io->body()[0]->iter(), "jo");
    EXPECT_EQ(io->body()[0]->body()[0]->iter(), "ii");
    EXPECT_EQ(io->body()[0]->body()[0]->body()[0]->iter(), "ji");
    expect_equiv(g0, g, {{"M", 16}, {"N", 16}});
}

TEST(ReorderLoops, RejectsCarriedDependence)
{
    const char* src = R"(
def smooth(n: size, x: f32[n + 1, n + 1] @ DRAM):
    for i in seq(0, n):
        for j in seq(0, n):
            x[i + 1, j] = x[i, j + 1]
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(reorder_loops(p, "i"), SchedulingError);
}

TEST(ReorderLoops, AcceptsIndependent)
{
    ProcPtr g = parse_proc(kGemv);
    ProcPtr g2 = reorder_loops(g, "i");
    EXPECT_EQ(g2->body_stmts()[0]->iter(), "j");
    expect_equiv(g, g2, {{"M", 8}, {"N", 8}});
}

TEST(CutLoop, SplitsRange)
{
    ProcPtr a = parse_proc(kAxpy);
    ProcPtr a2 = a->with_assertion(parse_expr_str("n >= 4"));
    ProcPtr a3 = cut_loop(a2, a2->find_loop("i"), idx_const(4));
    EXPECT_EQ(a3->body_stmts().size(), 2u);
    expect_equiv(a2, a3, {{"n", 10}});
}

TEST(CutLoop, RejectsUnprovableCutoff)
{
    ProcPtr a = parse_proc(kAxpy);
    EXPECT_THROW(cut_loop(a, a->find_loop("i"), idx_const(4)),
                 SchedulingError);
}

TEST(JoinLoops, Rejoins)
{
    ProcPtr a = parse_proc(kAxpy);
    ProcPtr a2 = a->with_assertion(parse_expr_str("n >= 4"));
    ProcPtr a3 = cut_loop(a2, a2->find_loop("i"), idx_const(4));
    ProcPtr a4 = join_loops(a3, a3->find_loop("i"), a3->find_loop("i #1"));
    EXPECT_EQ(a4->body_stmts().size(), 1u);
    expect_equiv(a2, a4, {{"n", 9}});
}

TEST(ShiftLoop, RebasedIteration)
{
    ProcPtr a = parse_proc(kAxpy);
    ProcPtr a2 = shift_loop(a, a->find_loop("i"), idx_const(5));
    EXPECT_EQ(print_expr(a2->body_stmts()[0]->lo()), "5");
    expect_equiv(a, a2, {{"n", 12}});
}

TEST(Fission, SplitsIndependentHalves)
{
    const char* src = R"(
def two(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
        y[i] = 2.0
)";
    ProcPtr p = parse_proc(src);
    Cursor first = p->find("x[_] = _");
    ProcPtr p2 = fission(p, first.after());
    EXPECT_EQ(p2->body_stmts().size(), 2u);
    expect_equiv(p, p2, {{"n", 9}});
}

TEST(Fission, RejectsCrossDependence)
{
    const char* src = R"(
def bad(n: size, x: f32[2 * n] @ DRAM, y: f32[2 * n] @ DRAM):
    for i in seq(0, n):
        x[i] = y[i]
        y[i + 1] = x[i]
)";
    // Fissioning would make all x[i]=y[i] run before any y[i+1]=x[i],
    // but iteration i+1 reads y[i+1] written by iteration i.
    ProcPtr p = parse_proc(src);
    Cursor first = p->find("x[_] = _");
    EXPECT_THROW(fission(p, first.after()), SchedulingError);
}

TEST(Fission, RejectsAllocDependence)
{
    const char* src = R"(
def withalloc(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        t: f32 @ DRAM
        t = x[i]
        x[i] = t + 1.0
)";
    ProcPtr p = parse_proc(src);
    Cursor mid = p->find("t = _");
    EXPECT_THROW(fission(p, mid.after()), SchedulingError);
}

TEST(RemoveLoop, RemovesIdempotent)
{
    const char* src = R"(
def r(n: size, x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    assert n > 0
    for i in seq(0, n):
        x[0] = y[0]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = remove_loop(p, p->find_loop("i"));
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::Assign);
    expect_equiv(p, p2, {{"n", 3}});
}

TEST(RemoveLoop, RejectsReduction)
{
    const char* src = R"(
def r(n: size, x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    assert n > 0
    for i in seq(0, n):
        x[0] += y[0]
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(remove_loop(p, p->find_loop("i")), SchedulingError);
}

TEST(RemoveLoop, RejectsPossiblyEmpty)
{
    const char* src = R"(
def r(n: size, x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    for i in seq(0, n):
        x[0] = y[0]
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(remove_loop(p, p->find_loop("i")), SchedulingError);
}

TEST(AddLoop, WrapAndInverse)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    x[0] = y[0]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = add_loop(p, p->find("x[_] = _"), "k", idx_const(3));
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::For);
    expect_equiv(p, p2, {});
    ProcPtr p3 = add_loop(p, p->find("x[_] = _"), "k", idx_const(3),
                          /*guard=*/true);
    const StmtPtr& loop = p3->body_stmts()[0];
    EXPECT_EQ(loop->body()[0]->kind(), StmtKind::If);
    expect_equiv(p, p3, {});
}

TEST(UnrollLoop, FullUnroll)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    for i in seq(0, 4):
        x[i] = y[i] * 2.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = unroll_loop(p, "i");
    EXPECT_EQ(p2->body_stmts().size(), 4u);
    EXPECT_EQ(print_stmt(p2->body_stmts()[2]), "x[2] = y[2] * 2.0\n");
    expect_equiv(p, p2, {});
}

TEST(UnrollLoop, RejectsSymbolicBounds)
{
    ProcPtr a = parse_proc(kAxpy);
    EXPECT_THROW(unroll_loop(a, "i"), SchedulingError);
}

TEST(MultLoops, FlattensPerfectNest)
{
    ProcPtr g = parse_proc(kGemv);
    ProcPtr g1 = divide_loop(g, "j", 8, {"jo", "ji"},
                             TailStrategy::Perfect);
    Cursor jo = g1->find_loop("jo");
    ProcPtr g2 = mult_loops(g1, jo, "jf");
    Cursor jf = g2->find_loop("jf");
    EXPECT_EQ(print_expr(jf.stmt()->hi()), "N / 8 * 8");
    expect_equiv(g, g2, {{"M", 8}, {"N", 16}});
}

TEST(DivideWithRecompute, OverlappedTiles)
{
    const char* src = R"(
def blur(W: size, y: f32[W + 2] @ DRAM, x: f32[W + 2] @ DRAM):
    assert W % 8 == 0
    for i in seq(0, W + 2):
        y[i] = x[i]
)";
    ProcPtr p = parse_proc(src);
    // W+2 elements computed by W/8 tiles of width 10 (recompute 8 each).
    ProcPtr p2 = divide_with_recompute(
        p, p->find_loop("i"), parse_expr_str("W / 8"), 8, {"io", "ii"});
    expect_equiv(p, p2, {{"W", 24}});
}

TEST(LiftScope, IfOutOfLoop)
{
    const char* src = R"(
def r(n: size, k: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        if k > 2:
            x[i] = 1.0
)";
    ProcPtr p = parse_proc(src);
    Cursor iff = p->find("if _: _");
    ProcPtr p2 = lift_scope(p, iff);
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::If);
    expect_equiv(p, p2, {{"n", 5}, {"k", 3}});
    expect_equiv(p, p2, {{"n", 5}, {"k", 1}});
}

TEST(LiftScope, RejectsIterDependentCondition)
{
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        if i > 2:
            x[i] = 1.0
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(lift_scope(p, p->find("if _: _")), SchedulingError);
}

TEST(LiftScope, LoopOutOfIf)
{
    const char* src = R"(
def r(n: size, k: size, x: f32[n] @ DRAM):
    if k > 2:
        for i in seq(0, n):
            x[i] = 1.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = lift_scope(p, p->find_loop("i"));
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::For);
    expect_equiv(p, p2, {{"n", 4}, {"k", 5}});
    expect_equiv(p, p2, {{"n", 4}, {"k", 0}});
}

TEST(LiftScope, IfInIfWithElses)
{
    const char* src = R"(
def r(a: size, b: size, x: f32[4] @ DRAM):
    if a > 2:
        if b > 3:
            x[0] = 1.0
        else:
            x[1] = 2.0
    else:
        x[2] = 3.0
)";
    ProcPtr p = parse_proc(src);
    Cursor inner = p->find("if b > 3: _");
    ProcPtr p2 = lift_scope(p, inner);
    const StmtPtr& outer = p2->body_stmts()[0];
    EXPECT_EQ(print_expr(outer->cond()), "b > 3");
    for (int64_t a = 1; a <= 4; a++) {
        for (int64_t b = 2; b <= 5; b++)
            expect_equiv(p, p2, {{"a", a}, {"b", b}});
    }
}

}  // namespace
}  // namespace exo2
