/**
 * @file
 * Native SIMD lowering tests (DESIGN.md §5).
 *
 * Four layers:
 *  1. Codegen shape: native mode turns vector-register buffers into
 *     __m256/__m512 values and expands intrinsic snippets at call
 *     sites; default (scalar) mode is unchanged.
 *  2. Fallback rule: instructions without a snippet, and call sites
 *     whose operands violate a snippet's contract (strided lanes),
 *     lower through the scalar helper function — in the same unit as
 *     native expansions.
 *  3. Directed tri-oracle cases for every masked and range-masked
 *     instruction variant (f64 on both machines, f32 on AVX2), each
 *     wrapped in a proc that loads registers, issues the variant, and
 *     stores the registers back so merge semantics are observable.
 *     Run three ways: scalar C, AVX2 intrinsics, AVX-512 intrinsics
 *     (the native modes skip on CPUs without the ISA).
 *  4. End-to-end: library-scheduled kernels compiled with intrinsics
 *     agree with the interpreter.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/codegen/c_codegen.h"
#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/kernels/blas.h"
#include "src/machine/machine.h"
#include "src/sched/blas.h"
#include "src/verify/verify.h"

namespace exo2 {
namespace {

using verify::cjit_cpu_supports;
using verify::CompiledProc;
using verify::NativeIsa;
using verify::SizeEnv;
using verify::tri_oracle_check;

/** Scoped override of EXO2_NATIVE_ISA (restored on destruction). */
class ScopedIsaEnv
{
  public:
    explicit ScopedIsaEnv(const char* value)
    {
        const char* old = std::getenv("EXO2_NATIVE_ISA");
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        setenv("EXO2_NATIVE_ISA", value, 1);
    }
    ~ScopedIsaEnv()
    {
        if (had_old_)
            setenv("EXO2_NATIVE_ISA", old_.c_str(), 1);
        else
            unsetenv("EXO2_NATIVE_ISA");
    }

  private:
    bool had_old_ = false;
    std::string old_;
};

ExprPtr
full_window(const std::string& name, const ExprPtr& hi, ScalarType t)
{
    return Expr::make_window(name, {WindowDim{idx_const(0), hi}}, t);
}

/**
 * Wrap one instruction in a standalone proc: every vector-register
 * formal gets a DRAM io buffer, a register alloc, a load before the
 * call, and a store after it (so lanes the mask keeps *and* lanes it
 * skips are both observable); DRAM formals bind to windows of io
 * buffers; size formals become size args of the same name.
 */
ProcPtr
wrap_instr(const Machine& machine, ScalarType t, const ProcPtr& instr)
{
    const VecInstrSet& set = machine.instrs(t);
    int w = machine.vec_width(t);
    std::vector<ProcArg> args;
    std::vector<StmtPtr> pre, post;
    std::vector<ExprPtr> call_args;
    int reg = 0;
    for (const ProcArg& f : instr->args()) {
        if (f.dims.empty()) {
            if (f.is_size || f.type == ScalarType::Index) {
                args.push_back(size_arg(f.name));
                call_args.push_back(var(f.name));
            } else {
                args.push_back(scalar_arg(f.name, f.type));
                call_args.push_back(read(f.name, {}, f.type));
            }
            continue;
        }
        std::string io = f.name + "_io" + std::to_string(reg);
        args.push_back(buffer_arg(io, t, {idx_const(w)}));
        if (f.mem && f.mem->is_vector()) {
            std::string r = "reg" + std::to_string(reg++);
            pre.push_back(
                Stmt::make_alloc(r, t, {idx_const(w)}, machine.mem_type()));
            pre.push_back(Stmt::make_call(
                set.load, {full_window(r, idx_const(w), t),
                           full_window(io, idx_const(w), t)}));
            post.push_back(Stmt::make_call(
                set.store, {full_window(io, idx_const(w), t),
                            full_window(r, idx_const(w), t)}));
            call_args.push_back(full_window(r, idx_const(w), t));
        } else {
            // DRAM formal: window of the io buffer with the formal's
            // own extent expression ([W], [m], or [1]).
            call_args.push_back(full_window(io, f.dims.at(0), t));
        }
    }
    std::vector<StmtPtr> body = pre;
    body.push_back(Stmt::make_call(instr, call_args));
    body.insert(body.end(), post.begin(), post.end());
    return Proc::make("wrap_" + instr->name(), std::move(args), {},
                      std::move(body));
}

/** All masked and range-masked variants of one instruction set. */
std::vector<std::pair<std::string, ProcPtr>>
masked_variants(const VecInstrSet& s)
{
    std::vector<std::pair<std::string, ProcPtr>> out;
    auto add = [&](const char* label, const ProcPtr& p) {
        if (p)
            out.emplace_back(label, p);
    };
    add("load_pred", s.load_pred);
    add("store_pred", s.store_pred);
    add("m_broadcast", s.m_broadcast);
    add("m_add", s.m_add);
    add("m_sub", s.m_sub);
    add("m_mul", s.m_mul);
    add("m_fma", s.m_fma);
    add("m_abs", s.m_abs);
    add("m_neg", s.m_neg);
    add("m_acc", s.m_acc);
    add("r_load", s.r_load);
    add("r_store", s.r_store);
    add("r_broadcast", s.r_broadcast);
    add("r_add", s.r_add);
    add("r_sub", s.r_sub);
    add("r_mul", s.r_mul);
    add("r_fma", s.r_fma);
    add("r_abs", s.r_abs);
    add("r_neg", s.r_neg);
    add("r_acc", s.r_acc);
    return out;
}

/** Tri-oracle every masked/range-masked variant of (machine, t) under
 *  the current EXO2_NATIVE_ISA setting. `m` is chosen to keep some
 *  lanes masked off on every width, `l` makes the range two-sided. */
void
check_masked_variants(const Machine& machine, ScalarType t)
{
    for (const auto& [label, instr] : masked_variants(machine.instrs(t))) {
        ProcPtr p = wrap_instr(machine, t, instr);
        SizeEnv env;
        if (instr->find_arg("m"))
            env["m"] = 3;
        if (instr->find_arg("l"))
            env["l"] = 1;
        auto rep = tri_oracle_check(p, p, env, 77001);
        EXPECT_TRUE(rep.ok)
            << machine.name() << " " << type_name(t) << " " << label
            << ": " << rep.detail;
    }
}

// ---- 1 & 2. Codegen shape and the fallback rule --------------------------

TEST(NativeCodegen, VectorAllocsBecomeRegisterValues)
{
    const auto& k = kernels::find_kernel("saxpy");
    ProcPtr opt = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 2);

    CodegenOpts native;
    native.native_vector_bytes = 32;
    std::string unit = codegen_c_unit(opt, native);
    EXPECT_NE(unit.find("#include <immintrin.h>"), std::string::npos);
    EXPECT_NE(unit.find("__m256 "), std::string::npos);
    EXPECT_NE(unit.find("_mm256_fmadd_ps("), std::string::npos);
    EXPECT_NE(unit.find("_mm256_loadu_ps("), std::string::npos);
    // Masked tail: blend-emulated masked ops and vmaskmov memory ops.
    EXPECT_NE(unit.find("_mm256_maskload_ps("), std::string::npos);
    EXPECT_NE(unit.find("_mm256_maskstore_ps("), std::string::npos);
    // No scalar register arrays, no scalar instr helpers left behind.
    EXPECT_EQ(unit.find("float var0["), std::string::npos) << unit;
    EXPECT_EQ(unit.find("void mm256_fmadd_ps("), std::string::npos);

    // Default mode is untouched: helpers with scalar reference loops.
    std::string scalar = codegen_c_unit(opt);
    EXPECT_EQ(scalar.find("immintrin"), std::string::npos);
    EXPECT_NE(scalar.find("void mm256_fmadd_ps("), std::string::npos);
}

TEST(NativeCodegen, InsufficientIsaBudgetStaysScalar)
{
    // An AVX-512-scheduled kernel under a 32-byte budget must compile
    // fully scalar rather than half-native.
    const auto& k = kernels::find_kernel("saxpy");
    ProcPtr opt = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx512(), 2);
    EXPECT_EQ(codegen_max_vector_bytes(opt), 64);
    CodegenOpts avx2_only;
    avx2_only.native_vector_bytes = 32;
    std::string unit = codegen_c_unit(opt, avx2_only);
    EXPECT_EQ(unit.find("immintrin"), std::string::npos);
    EXPECT_NE(unit.find("void mm512_fmadd_ps("), std::string::npos);
}

TEST(NativeCodegen, InstrWithoutTemplateFallsBackToScalarHelper)
{
    // A user-defined instruction that never got an intrinsic snippet:
    // native mode must emit its scalar helper and call it with an
    // element-pointer view of the __m256 register.
    ProcPtr body = parse_proc(R"(
def my_rot8(dst: [f32][8] @ AVX2, src: [f32][8] @ AVX2):
    for i in seq(0, 8):
        dst[i] = src[i] * 2.0
)");
    InstrInfo info;
    info.c_template = "my_rot8_impl";
    ProcPtr instr = Proc::make("my_rot8", body->args(), body->preds(),
                               body->body_stmts(), info);
    EXPECT_FALSE(instr->instr()->has_native_template());

    ProcPtr p = wrap_instr(machine_avx2(), ScalarType::F32, instr);
    CodegenOpts native;
    native.native_vector_bytes = 32;
    std::string unit = codegen_c_unit(p, native);
    // Scalar helper emitted and invoked on casted register pointers...
    EXPECT_NE(unit.find("void my_rot8_impl("), std::string::npos) << unit;
    EXPECT_NE(unit.find("my_rot8_impl((((float*)&"), std::string::npos)
        << unit;
    // ...while the machine's own load/store still expand natively.
    EXPECT_NE(unit.find("_mm256_loadu_ps("), std::string::npos);
    EXPECT_NE(unit.find("_mm256_storeu_ps("), std::string::npos);

    // And the mixed unit is semantically right under every mode.
    ScopedIsaEnv scalar("scalar");
    auto rep = tri_oracle_check(p, p, {}, 5150);
    EXPECT_TRUE(rep.ok) << rep.detail;
    if (cjit_cpu_supports(NativeIsa::Avx2)) {
        ScopedIsaEnv native_env("avx2");
        auto rep2 = tri_oracle_check(p, p, {}, 5151);
        EXPECT_TRUE(rep2.ok) << rep2.detail;
    }
}

TEST(NativeCodegen, StridedLaneOperandFallsBackPerCallSite)
{
    // Loading a matrix *column* violates the unit-stride lane contract
    // of _mm256_loadu_ps; that call site must use the scalar helper
    // while unit-stride sites in the same proc stay native.
    const VecInstrSet& s = machine_avx2().instrs(ScalarType::F32);
    std::vector<ProcArg> args = {
        buffer_arg("A", ScalarType::F32, {idx_const(8), idx_const(8)}),
        buffer_arg("y", ScalarType::F32, {idx_const(8)}),
    };
    StmtPtr alloc = Stmt::make_alloc("v", ScalarType::F32, {idx_const(8)},
                                     machine_avx2().mem_type());
    // v = A[0:8, 2]  (stride-8 lanes)
    ExprPtr col = Expr::make_window(
        "A", {WindowDim{idx_const(0), idx_const(8)},
              WindowDim{idx_const(2), nullptr}},
        ScalarType::F32);
    StmtPtr load_col = Stmt::make_call(s.load,
                                       {full_window("v", idx_const(8),
                                                    ScalarType::F32),
                                        col});
    StmtPtr store_row = Stmt::make_call(
        s.store, {full_window("y", idx_const(8), ScalarType::F32),
                  full_window("v", idx_const(8), ScalarType::F32)});
    ProcPtr p = Proc::make("col_copy", args, {},
                           {alloc, load_col, store_row});

    CodegenOpts native;
    native.native_vector_bytes = 32;
    std::string unit = codegen_c_unit(p, native);
    EXPECT_NE(unit.find("void mm256_loadu_ps("), std::string::npos)
        << unit;  // helper for the strided site
    EXPECT_NE(unit.find("_mm256_storeu_ps("), std::string::npos)
        << unit;  // native store on the unit-stride site

    ScopedIsaEnv scalar("scalar");
    auto rep = tri_oracle_check(p, p, {}, 5152);
    EXPECT_TRUE(rep.ok) << rep.detail;
    if (cjit_cpu_supports(NativeIsa::Avx2)) {
        ScopedIsaEnv native_env("avx2");
        auto rep2 = tri_oracle_check(p, p, {}, 5153);
        EXPECT_TRUE(rep2.ok) << rep2.detail;
    }
}

TEST(NativeCodegen, ResidualLaneAccessReadsRegisterLanes)
{
    // A scalar statement touching a vector register (not every schedule
    // replaces every op) must still lower: lanes are addressed through
    // an element-pointer cast of the register value.
    const VecInstrSet& s = machine_avx2().instrs(ScalarType::F32);
    std::vector<ProcArg> args = {
        buffer_arg("x", ScalarType::F32, {idx_const(8)}),
        buffer_arg("y", ScalarType::F32, {idx_const(8)}),
    };
    StmtPtr alloc = Stmt::make_alloc("v", ScalarType::F32, {idx_const(8)},
                                     machine_avx2().mem_type());
    StmtPtr load = Stmt::make_call(
        s.load, {full_window("v", idx_const(8), ScalarType::F32),
                 full_window("x", idx_const(8), ScalarType::F32)});
    StmtPtr pick = Stmt::make_assign(
        "y", {idx_const(0)},
        read("v", {idx_const(3)}) * num_const(2.0), ScalarType::F32);
    ProcPtr p = Proc::make("lane_pick", args, {}, {alloc, load, pick});

    CodegenOpts native;
    native.native_vector_bytes = 32;
    std::string unit = codegen_c_unit(p, native);
    EXPECT_NE(unit.find("((float*)&v)[(3)]"), std::string::npos) << unit;

    ScopedIsaEnv scalar("scalar");
    auto rep = tri_oracle_check(p, p, {}, 5154);
    EXPECT_TRUE(rep.ok) << rep.detail;
    if (cjit_cpu_supports(NativeIsa::Avx2)) {
        ScopedIsaEnv native_env("avx2");
        auto rep2 = tri_oracle_check(p, p, {}, 5155);
        EXPECT_TRUE(rep2.ok) << rep2.detail;
    }
}

// ---- 3. Directed masked / range-masked variant parity --------------------

TEST(NativeDirected, MaskedVariantsScalarBackend)
{
    ScopedIsaEnv env("scalar");
    check_masked_variants(machine_avx2(), ScalarType::F64);
    check_masked_variants(machine_avx512(), ScalarType::F64);
}

TEST(NativeDirected, MaskedVariantsAvx2Intrinsics)
{
    if (!cjit_cpu_supports(NativeIsa::Avx2))
        GTEST_SKIP() << "CPU has no AVX2+FMA";
    ScopedIsaEnv env("avx2");
    check_masked_variants(machine_avx2(), ScalarType::F64);
    check_masked_variants(machine_avx2(), ScalarType::F32);
}

TEST(NativeDirected, MaskedVariantsAvx512Intrinsics)
{
    if (!cjit_cpu_supports(NativeIsa::Avx512))
        GTEST_SKIP() << "CPU has no AVX-512F";
    ScopedIsaEnv env("avx512");
    check_masked_variants(machine_avx512(), ScalarType::F64);
    check_masked_variants(machine_avx512(), ScalarType::F32);
}

// ---- 4. End-to-end intrinsics vs interpreter on scheduled kernels --------

TEST(NativeEndToEnd, Level1KernelsMatchInterpreterUnderAvx2)
{
    if (!cjit_cpu_supports(NativeIsa::Avx2))
        GTEST_SKIP() << "CPU has no AVX2+FMA";
    ScopedIsaEnv env("avx2");
    for (const char* name : {"saxpy", "sdot", "sasum", "dscal", "drot"}) {
        const auto& k = kernels::find_kernel(name);
        ProcPtr opt = sched::optimize_level_1(
            k.proc, k.proc->find_loop(k.main_loop), k.prec,
            machine_avx2(), 2);
        // 19 exercises the masked ragged tail.
        auto rep = tri_oracle_check(k.proc, opt, {{"n", 19}}, 90210);
        EXPECT_TRUE(rep.ok) << name << ": " << rep.detail;
    }
}

TEST(NativeEndToEnd, CompiledProcReportsNativeMode)
{
    if (!cjit_cpu_supports(NativeIsa::Avx2))
        GTEST_SKIP() << "CPU has no AVX2+FMA";
    const auto& k = kernels::find_kernel("saxpy");
    ProcPtr opt = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 2);
    CompiledProc scalar(opt, NativeIsa::Scalar);
    EXPECT_FALSE(scalar.is_native());
    EXPECT_EQ(scalar.source().find("immintrin"), std::string::npos);
    CompiledProc native(opt, NativeIsa::Avx2);
    EXPECT_TRUE(native.is_native());
    EXPECT_NE(native.source().find("_mm256_fmadd_ps("), std::string::npos);
}

}  // namespace
}  // namespace exo2
