#ifndef EXO2_TESTS_TEST_SUPPORT_H_
#define EXO2_TESTS_TEST_SUPPORT_H_

/**
 * @file
 * Shared test utilities: randomized equivalence checking between an
 * original and a scheduled procedure via the reference interpreter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/proc.h"

namespace exo2 {
namespace testing_support {

/** Evaluate a (size-dependent) dimension expression. */
inline int64_t
eval_dim(const ExprPtr& e, const std::map<std::string, int64_t>& sizes)
{
    switch (e->kind()) {
      case ExprKind::Const:
        return static_cast<int64_t>(e->const_value());
      case ExprKind::Read: {
        auto it = sizes.find(e->name());
        if (it == sizes.end())
            throw std::runtime_error("eval_dim: unknown size " + e->name());
        return it->second;
      }
      case ExprKind::USub:
        return -eval_dim(e->lhs(), sizes);
      case ExprKind::BinOp: {
        int64_t l = eval_dim(e->lhs(), sizes);
        int64_t r = eval_dim(e->rhs(), sizes);
        switch (e->op()) {
          case BinOpKind::Add: return l + r;
          case BinOpKind::Sub: return l - r;
          case BinOpKind::Mul: return l * r;
          case BinOpKind::Div: {
            int64_t q = l / r;
            if ((l % r != 0) && ((l < 0) != (r < 0)))
                q -= 1;
            return q;
          }
          case BinOpKind::Mod: {
            int64_t m = l % r;
            if (m != 0 && ((l < 0) != (r < 0)))
                m += r;
            return m;
          }
          default:
            throw std::runtime_error("eval_dim: bad op");
        }
      }
      default:
        throw std::runtime_error("eval_dim: bad expr");
    }
}

/** Materialized arguments for one interpretation run. */
struct ArgSet
{
    std::vector<std::unique_ptr<Buffer>> buffers;
    std::vector<RunArg> args;
};

/** Build arguments for `p` given size bindings; buffers random. */
inline ArgSet
make_args(const ProcPtr& p, const std::map<std::string, int64_t>& sizes,
          uint64_t seed)
{
    ArgSet out;
    uint64_t k = seed;
    for (const auto& a : p->args()) {
        if (a.is_size) {
            auto it = sizes.find(a.name);
            if (it == sizes.end())
                throw std::runtime_error("make_args: size " + a.name +
                                         " not provided");
            out.args.push_back(RunArg::make_size(it->second));
        } else if (a.dims.empty()) {
            k = k * 2654435761u + 17;
            double v = 0.25 + static_cast<double>(k % 97) / 97.0;
            out.args.push_back(RunArg::make_scalar(v));
        } else {
            std::vector<int64_t> dims;
            for (const auto& d : a.dims)
                dims.push_back(eval_dim(d, sizes));
            auto buf = std::make_unique<Buffer>(a.type, dims);
            k = k * 2654435761u + 23;
            buf->fill_random(k);
            out.args.push_back(RunArg::make_buffer(buf.get()));
            out.buffers.push_back(std::move(buf));
        }
    }
    return out;
}

/**
 * Run `orig` and `sched` with identical random inputs and require all
 * buffer arguments to match within `tol` (relative).
 */
inline void
expect_equiv(const ProcPtr& orig, const ProcPtr& sched,
             const std::map<std::string, int64_t>& sizes,
             double tol = 1e-4, uint64_t seed = 42)
{
    ArgSet a = make_args(orig, sizes, seed);
    ArgSet b = make_args(sched, sizes, seed);
    ASSERT_EQ(a.buffers.size(), b.buffers.size())
        << "signature mismatch between original and scheduled procs";
    interp_run(orig, a.args);
    interp_run(sched, b.args);
    for (size_t i = 0; i < a.buffers.size(); i++) {
        const Buffer& x = *a.buffers[i];
        const Buffer& y = *b.buffers[i];
        ASSERT_EQ(x.size(), y.size());
        for (int64_t j = 0; j < x.size(); j++) {
            double xv = x.at(j);
            double yv = y.at(j);
            double err = std::fabs(xv - yv) /
                         std::max(1.0, std::max(std::fabs(xv),
                                                std::fabs(yv)));
            ASSERT_LE(err, tol)
                << "buffer " << i << " differs at flat index " << j
                << ": " << xv << " vs " << yv << "\n--- original:\n"
                << print_proc(orig) << "--- scheduled:\n"
                << print_proc(sched);
        }
    }
}

}  // namespace testing_support
}  // namespace exo2

#endif  // EXO2_TESTS_TEST_SUPPORT_H_
