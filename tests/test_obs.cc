/**
 * @file
 * Observability-layer tests (DESIGN.md §10): span nesting and
 * thread-safety (8-thread hammer, TSan-clean), ring wrap accounting,
 * trace JSON well-formedness (parsed by a strict little JSON
 * validator), histogram bucket edges and percentiles, metrics
 * snapshot consistency under concurrent writers, the
 * zero-allocation/near-zero-cost guarantee when tracing is off, and
 * the daemon's telemetry surface: request-id echo, per-phase extras,
 * op=metrics round-trip, op=stats latency percentiles.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/ir/errors.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/serve/client.h"
#include "src/serve/daemon.h"
#include "src/serve/protocol.h"

// ---------------------------------------------------------------------------
// Allocation counting: the whole binary's global new/delete, gated by
// a flag so only the zero-allocation test pays attention.
// ---------------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void*
operator new(size_t sz)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void* p = std::malloc(sz ? sz : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void*
operator new[](size_t sz)
{
    return operator new(sz);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, size_t) noexcept
{
    std::free(p);
}

namespace exo2 {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// A strict recursive-descent JSON validator (syntax only): enough to
// prove the emitted traces and metrics parse, with no dependencies.
// ---------------------------------------------------------------------------

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string& s) : s_(s) {}

    bool valid()
    {
        ws();
        if (!value())
            return false;
        ws();
        return i_ == s_.size();
    }

  private:
    const std::string& s_;
    size_t i_ = 0;

    char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
    bool eat(char c)
    {
        if (peek() != c)
            return false;
        i_++;
        return true;
    }
    void ws()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                s_[i_] == '\r'))
            i_++;
    }

    bool value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return str();
          case 't': return lit("true");
          case 'f': return lit("false");
          case 'n': return lit("null");
          default: return number();
        }
    }

    bool lit(const char* w)
    {
        size_t n = std::strlen(w);
        if (s_.compare(i_, n, w) != 0)
            return false;
        i_ += n;
        return true;
    }

    bool object()
    {
        if (!eat('{'))
            return false;
        ws();
        if (eat('}'))
            return true;
        for (;;) {
            ws();
            if (!str())
                return false;
            ws();
            if (!eat(':'))
                return false;
            ws();
            if (!value())
                return false;
            ws();
            if (eat('}'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool array()
    {
        if (!eat('['))
            return false;
        ws();
        if (eat(']'))
            return true;
        for (;;) {
            ws();
            if (!value())
                return false;
            ws();
            if (eat(']'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool str()
    {
        if (!eat('"'))
            return false;
        while (i_ < s_.size()) {
            char c = s_[i_];
            if (c == '"') {
                i_++;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;  // control chars must be escaped
            if (c == '\\') {
                i_++;
                char e = peek();
                if (e == 'u') {
                    i_++;
                    for (int k = 0; k < 4; k++) {
                        if (!std::isxdigit(
                                static_cast<unsigned char>(peek())))
                            return false;
                        i_++;
                    }
                    continue;
                }
                if (std::strchr("\"\\/bfnrt", e) == nullptr)
                    return false;
                i_++;
                continue;
            }
            i_++;
        }
        return false;
    }

    bool number()
    {
        size_t start = i_;
        if (peek() == '-')
            i_++;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            i_++;
        if (peek() == '.') {
            i_++;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                i_++;
        }
        if (peek() == 'e' || peek() == 'E') {
            i_++;
            if (peek() == '+' || peek() == '-')
                i_++;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                i_++;
        }
        return i_ > start;
    }
};

bool
json_valid(const std::string& s)
{
    return JsonValidator(s).valid();
}

class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        trace_stop();
        trace_clear();
        reset_metrics();
    }
    void TearDown() override
    {
        trace_stop();
        trace_clear();
    }
};

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpansNestAndSurviveAnEightThreadHammer)
{
    trace_start();
    constexpr int kThreads = 8;
    constexpr int kOuter = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([t] {
            for (int i = 0; i < kOuter; i++) {
                EXO2_SPAN("test.outer", {{"thread", t}, {"i", i}});
                {
                    EXO2_SPAN("test.mid");
                    EXO2_SPAN("test.inner", {{"deep", "yes"}});
                }
            }
        });
    }
    // Concurrent readers must not race the writers.
    for (int i = 0; i < 20; i++) {
        (void)trace_json();
        (void)trace_span_count();
    }
    for (auto& th : threads)
        th.join();
    trace_stop();
    EXPECT_EQ(trace_span_count(),
              static_cast<uint64_t>(kThreads * kOuter * 3));
    EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(ObsTest, RingWrapKeepsRecentSpansAndCountsDrops)
{
    trace_start("", 64);
    std::thread writer([] {
        for (int i = 0; i < 1000; i++) {
            EXO2_SPAN("test.wrap", {{"i", i}});
        }
    });
    writer.join();
    trace_stop();
    EXPECT_LE(trace_span_count(), 64u);
    EXPECT_EQ(trace_span_count() + trace_dropped(), 1000u);
}

TEST_F(ObsTest, TraceJsonIsWellFormedAndEscapes)
{
    trace_start();
    {
        EXO2_SPAN("test.json",
                  {{"text", std::string("quote\" slash\\ nl\n")},
                   {"num", 42},
                   {"fp", 2.5}});
    }
    {
        EXO2_SPAN("test.plain");
    }
    trace_stop();
    std::string js = trace_json();
    EXPECT_TRUE(json_valid(js)) << js;
    EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(js.find("\"test.json\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(js.find("\"num\":42"), std::string::npos);

    // The flushed file round-trips through the atomic writer.
    std::string path = ::testing::TempDir() + "exo2_trace_" +
                       std::to_string(getpid()) + ".json";
    ASSERT_TRUE(trace_flush(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), js);
    EXPECT_TRUE(json_valid(ss.str()));
    unlink(path.c_str());
}

TEST_F(ObsTest, DisabledSpansAllocateNothingAndCostAlmostNothing)
{
    trace_stop();
    ASSERT_FALSE(trace_enabled());

    // Warm any lazy statics on this thread before counting.
    {
        EXO2_SPAN("test.warm", {{"k", "v"}});
    }

    g_allocs.store(0);
    g_count_allocs.store(true);
    constexpr int kIters = 10000;
    for (int i = 0; i < kIters; i++) {
        // Args that WOULD allocate if evaluated: the macro must not
        // touch them while tracing is off.
        EXO2_SPAN("test.off",
                  {{"key", std::string("heap-allocated-value")},
                   {"i", i}});
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_allocs.load(), 0u);

    // Near-zero cost: far below a microsecond per disabled span (the
    // real budget is enforced proportionally by exo2trace --overhead;
    // this bound is deliberately generous so it cannot flake).
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 100000; i++) {
        EXO2_SPAN("test.cost");
    }
    double per = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count() /
                 100000;
    EXPECT_LT(per, 1e-6);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketEdgesAreExactAndMonotonic)
{
    // Lower edges are increasing powers of 2^(1/4).
    for (int i = 0; i + 1 < Histogram::kBuckets; i++)
        EXPECT_LT(Histogram::bucket_lower(i),
                  Histogram::bucket_lower(i + 1));
    EXPECT_DOUBLE_EQ(Histogram::bucket_lower(0), std::exp2(-12));

    // 1.0 sits exactly on a bucket edge and must land in the bucket it
    // bounds from below.
    int b1 = Histogram::bucket_for(1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucket_lower(b1), 1.0);

    // Every bucket's interior maps back to that bucket.
    for (int i = 0; i < Histogram::kBuckets - 1; i++) {
        double mid = std::sqrt(Histogram::bucket_lower(i) *
                               Histogram::bucket_lower(i + 1));
        EXPECT_EQ(Histogram::bucket_for(mid), i) << "bucket " << i;
    }

    // Clamps: zero, negatives, and overflow do not escape the range.
    EXPECT_EQ(Histogram::bucket_for(0.0), 0);
    EXPECT_EQ(Histogram::bucket_for(-3.5), 0);
    EXPECT_EQ(Histogram::bucket_for(1e300), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucket_for(1e-300), 0);
}

TEST_F(ObsTest, HistogramPercentilesBracketTheData)
{
    Histogram h;
    for (int i = 0; i < 100; i++)
        h.observe(10.0);
    int b = Histogram::bucket_for(10.0);
    double lo = Histogram::bucket_lower(b);
    double hi = Histogram::bucket_lower(b + 1);
    for (double p : {0.5, 0.95, 0.99}) {
        double v = h.percentile(p);
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
    }
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.sum(), 1000.0);

    // A bimodal distribution separates p50 from p99.
    Histogram h2;
    for (int i = 0; i < 99; i++)
        h2.observe(1.0);
    h2.observe(1000.0);
    EXPECT_LT(h2.percentile(0.5), 2.0);
    EXPECT_GT(h2.percentile(0.995), 500.0);
}

TEST_F(ObsTest, MetricsStayConsistentUnderConcurrentWriters)
{
    Counter& c = counter("test.hits");
    Histogram& h = histogram("test.lat");
    Gauge& g = gauge("test.depth");
    constexpr int kThreads = 8;
    constexpr int kIters = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; i++) {
                c.inc();
                h.observe(4.0);
                g.add(1);
            }
        });
    }
    // Concurrent snapshotting must see internally consistent data.
    for (int i = 0; i < 50; i++)
        (void)metrics_json();
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads * kIters));
    EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kIters));
    EXPECT_DOUBLE_EQ(h.sum(), 4.0 * kThreads * kIters);
    EXPECT_EQ(g.value(), static_cast<int64_t>(kThreads * kIters));

    std::string js = metrics_json();
    EXPECT_TRUE(json_valid(js)) << js;
    EXPECT_NE(js.find("\"test.hits\""), std::string::npos);
    EXPECT_NE(js.find("\"test.lat\""), std::string::npos);

    // Reset zeroes in place; the cached references stay usable.
    reset_metrics();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    c.inc();
    EXPECT_EQ(counter("test.hits").value(), 1u);
}

TEST_F(ObsTest, RegistryRejectsKindMismatches)
{
    counter("test.kind");
    EXPECT_THROW(gauge("test.kind"), InternalError);
    EXPECT_THROW(histogram("test.kind"), InternalError);
}

TEST_F(ObsTest, ObsConfigParsesOnceFromEnv)
{
    // The memoized config was parsed at static-init (trace autostart);
    // with EXO2_TRACE unset in the test environment it must be inert.
    const ObsConfig& cfg = obs_config();
    EXPECT_EQ(cfg.trace_path, "");
    EXPECT_GE(cfg.trace_ring_capacity, 16u);
    // Same object every call: one parse for the process lifetime.
    EXPECT_EQ(&cfg, &obs_config());
}

// ---------------------------------------------------------------------------
// Phase attribution
// ---------------------------------------------------------------------------

TEST_F(ObsTest, PhaseCollectionIsThreadLocalAndAdditive)
{
    EXPECT_FALSE(phase_collecting());
    phase_add(Phase::Search, 1.0);  // no-op outside a collection

    phase_begin_collection();
    phase_add(Phase::Search, 0.25);
    phase_add(Phase::Search, 0.25);
    phase_add(Phase::Lint, 0.1);
    std::thread other([] {
        // A different thread's adds must not leak into this one.
        EXPECT_FALSE(phase_collecting());
        phase_add(Phase::Search, 99.0);
    });
    other.join();
    PhaseBreakdown pb = phase_end_collection();
    EXPECT_DOUBLE_EQ(pb.of(Phase::Search), 0.5);
    EXPECT_DOUBLE_EQ(pb.of(Phase::Lint), 0.1);
    EXPECT_DOUBLE_EQ(pb.of(Phase::Queue), 0.0);
    EXPECT_DOUBLE_EQ(pb.total(), 0.6);
    EXPECT_FALSE(phase_collecting());
}

// ---------------------------------------------------------------------------
// Daemon telemetry
// ---------------------------------------------------------------------------

class ObsDaemonTest : public ObsTest
{
  protected:
    void SetUp() override
    {
        ObsTest::SetUp();
        for (const char* v :
             {"EXO2_CACHE_DIR", "EXO2_FAULTS", "EXO2_TUNE_DEADLINE",
              "EXO2_SERVE_SOCKET", "EXO2_SERVE_WORKERS",
              "EXO2_SERVE_QUEUE", "EXO2_SERVE_DEADLINE",
              "EXO2_SERVE_RETRIES"})
            unsetenv(v);
    }
};

TEST_F(ObsDaemonTest, DaemonEchoesRequestIdsAndAttributesPhases)
{
    serve::ServeConfig cfg;
    cfg.socket_path = "/tmp/exo2_obs_" + std::to_string(getpid()) +
                      "_a.sock";
    cfg.workers = 2;
    serve::Daemon d(cfg);
    d.start();
    serve::ServeClient client(cfg.socket_path);
    ASSERT_TRUE(client.connect());

    serve::ServeRequest req;
    req.id = "my-req-7";
    req.op = "tune";
    req.kernel = "saxpy";
    req.sizes = "n=256";
    req.beam = 2;
    req.rounds = 2;
    req.restarts = 0;
    req.jit_topk = 0;
    req.validate = 0;
    serve::ServeResponse resp = client.call_with_retry(req);
    ASSERT_TRUE(resp.ok()) << resp.detail;
    EXPECT_EQ(resp.id, "my-req-7");
    EXPECT_EQ(resp.extra["request_id"], "my-req-7");
    // Queued work carries the per-phase breakdown.
    for (const char* k :
         {"phase_queue_ms", "phase_lint_ms", "phase_cache_ms",
          "phase_search_ms", "phase_cjit_ms", "phase_validate_ms"}) {
        ASSERT_NE(resp.extra.find(k), resp.extra.end()) << k;
        EXPECT_GE(std::stod(resp.extra[k]), 0.0) << k;
    }
    // The search dominates a cold cost-model-only tune.
    EXPECT_GT(std::stod(resp.extra["phase_search_ms"]), 0.0);

    // A request without an id gets a generated one.
    req.id.clear();
    resp = client.call_with_retry(req);
    ASSERT_TRUE(resp.ok()) << resp.detail;
    EXPECT_FALSE(resp.extra["request_id"].empty());
    EXPECT_EQ(resp.extra["request_id"][0], 'r');

    d.stop();
}

TEST_F(ObsDaemonTest, MetricsEndpointReturnsRegistryWithPercentiles)
{
    serve::ServeConfig cfg;
    cfg.socket_path = "/tmp/exo2_obs_" + std::to_string(getpid()) +
                      "_b.sock";
    cfg.workers = 2;
    serve::Daemon d(cfg);
    d.start();
    serve::ServeClient client(cfg.socket_path);
    ASSERT_TRUE(client.connect());

    // Drive one real request through the queue so the latency and
    // phase histograms are non-empty.
    serve::ServeRequest req;
    req.id = "warm";
    req.op = "tune";
    req.kernel = "saxpy";
    req.sizes = "n=256";
    req.beam = 2;
    req.rounds = 2;
    req.restarts = 0;
    req.jit_topk = 0;
    req.validate = 0;
    serve::ServeResponse resp = client.call_with_retry(req);
    ASSERT_TRUE(resp.ok()) << resp.detail;

    serve::ServeRequest mreq;
    mreq.id = "m1";
    mreq.op = "metrics";
    serve::ServeResponse mresp = client.call_with_retry(mreq);
    ASSERT_TRUE(mresp.ok()) << mresp.detail;
    ASSERT_NE(mresp.extra.find("metrics"), mresp.extra.end());
    const std::string& js = mresp.extra["metrics"];
    EXPECT_TRUE(json_valid(js)) << js;
    EXPECT_NE(js.find("\"serve.latency_ms\""), std::string::npos);
    EXPECT_NE(js.find("\"serve.phase.search_ms\""), std::string::npos);
    EXPECT_NE(js.find("\"p50\""), std::string::npos);
    EXPECT_NE(js.find("\"p95\""), std::string::npos);
    EXPECT_NE(js.find("\"p99\""), std::string::npos);
    // The engine mirror rode along.
    EXPECT_NE(js.find("\"costsim.cache_hits\""), std::string::npos);

    // op=stats surfaces the same histogram as flat percentiles, via
    // the lock-free snapshot (never the queue mutex).
    serve::ServeRequest sreq;
    sreq.id = "s1";
    sreq.op = "stats";
    serve::ServeResponse sresp = client.call_with_retry(sreq);
    ASSERT_TRUE(sresp.ok());
    ASSERT_NE(sresp.extra.find("latency_p50_ms"), sresp.extra.end());
    ASSERT_NE(sresp.extra.find("latency_p95_ms"), sresp.extra.end());
    ASSERT_NE(sresp.extra.find("latency_p99_ms"), sresp.extra.end());
    EXPECT_GE(std::stoull(sresp.extra["latency_count"]), 1u);
    EXPECT_GT(std::stod(sresp.extra["latency_p50_ms"]), 0.0);

    d.stop();
}

}  // namespace
}  // namespace obs
}  // namespace exo2
