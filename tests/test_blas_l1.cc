/**
 * @file
 * Integration tests: optimize_level_1 over every BLAS level-1 kernel
 * variant on both machines, with randomized equivalence checks across
 * sizes (including ragged tails). This is the paper's Section 6.2.1
 * claim: one scheduling operator covering all 24 kernel variants.
 */

#include <gtest/gtest.h>

#include "src/kernels/blas.h"
#include "src/ir/printer.h"
#include "src/sched/blas.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using kernels::blas_level1;
using kernels::KernelDef;
using sched::optimize_level_1;
using testing_support::expect_equiv;

class Level1Param
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(Level1Param, OptimizeAndCheck)
{
    const auto& [name, avx512] = GetParam();
    const KernelDef& k = kernels::find_kernel(name);
    const Machine& m = avx512 ? machine_avx512() : machine_avx2();
    ProcPtr opt;
    ASSERT_NO_THROW(opt = optimize_level_1(
                        k.proc, k.proc->find_loop(k.main_loop), k.prec, m,
                        4))
        << name;
    double tol = k.prec == ScalarType::F64 ? 1e-9 : 5e-4;
    for (int64_t n : {0, 1, 7, 8, 33, 64, 100})
        expect_equiv(k.proc, opt, {{"n", n}}, tol);
    // The optimized kernel must actually use vector instructions
    // (except the no-op rotm(-2)).
    if (name.find("rotm(-2)") == std::string::npos) {
        std::string printed = print_proc(opt);
        std::string prefix = avx512 ? "mm512" : "mm256";
        EXPECT_NE(printed.find(prefix), std::string::npos) << printed;
    }
}

std::vector<std::tuple<std::string, bool>>
all_level1_params()
{
    std::vector<std::tuple<std::string, bool>> out;
    for (const auto& k : blas_level1()) {
        out.emplace_back(k.name, false);
        out.emplace_back(k.name, true);
    }
    return out;
}

std::string
param_name(
    const ::testing::TestParamInfo<std::tuple<std::string, bool>>& info)
{
    std::string n = std::get<0>(info.param);
    for (auto& c : n) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n + (std::get<1>(info.param) ? "_avx512" : "_avx2");
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Level1Param,
                         ::testing::ValuesIn(all_level1_params()),
                         param_name);

}  // namespace
}  // namespace exo2
