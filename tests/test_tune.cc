/**
 * @file
 * Autotuner tests (DESIGN.md §6): action-enumeration legality (every
 * enumerated action applies without throwing — a primitive whose
 * legality predicate disagrees with its apply is an engine bug),
 * serialization round-trips, search determinism (same seed + opts =>
 * identical winning script, bit-for-bit replayable), cost-cache
 * accounting, and tri-oracle validation of winners.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/errors.h"
#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/machine/cost_sim.h"
#include "src/machine/machine.h"
#include "src/tune/actions.h"
#include "src/tune/tune.h"
#include "src/verify/fuzz.h"

namespace exo2 {
namespace {

using tune::enumerate_actions;
using tune::TuneAction;
using tune::TuneOpts;
using tune::TuneSpace;
using verify::FuzzStep;

TuneSpace
space_for(const Machine& m, ScalarType prec)
{
    return tune::default_space(m, prec, CostConfig());
}

// -- Satellite: every enumerated action applies without throwing -------

/** Kernels covering scalar loops, reductions, 2-D nests, triangular
 *  bounds, multi-nest pipelines, and allocs. */
std::vector<std::pair<std::string, ProcPtr>>
legality_corpus()
{
    std::vector<std::pair<std::string, ProcPtr>> out;
    for (const char* n : {"saxpy", "sdot", "sasum", "sgemv_n", "sgemv_t",
                          "strmv_lnn", "ssyr_u"}) {
        out.emplace_back(n, kernels::find_kernel(n).proc);
    }
    out.emplace_back("sgemm", kernels::sgemm());
    out.emplace_back("blur", kernels::blur());
    out.emplace_back("unsharp", kernels::unsharp());
    return out;
}

TEST(TuneActions, EveryEnumeratedActionAppliesCleanly)
{
    const Machine& m = machine_avx2();
    TuneSpace sp = space_for(m, ScalarType::F32);
    for (const auto& [name, proc] : legality_corpus()) {
        std::vector<TuneAction> actions =
            enumerate_actions(proc, m, ScalarType::F32, sp);
        EXPECT_FALSE(actions.empty()) << name;
        for (const TuneAction& a : actions) {
            ProcPtr replayed;
            ASSERT_NO_THROW(replayed = tune::apply_tune_step(proc, a.step))
                << name << ": " << verify::step_to_string(a.step);
            // The recorded step must reproduce the enumerated result
            // bit-for-bit (ordinals and fresh names are deterministic).
            EXPECT_EQ(proc_digest(replayed), proc_digest(a.result))
                << name << ": " << verify::step_to_string(a.step);
        }
    }
}

TEST(TuneActions, SecondGenerationActionsApplyCleanly)
{
    // Legality must hold on derived states too (vectorized bodies,
    // jammed nests), where primitives see instr calls and big blocks.
    const Machine& m = machine_avx2();
    TuneSpace sp = space_for(m, ScalarType::F32);
    for (const char* name : {"saxpy", "sgemv_n"}) {
        ProcPtr p = kernels::find_kernel(name).proc;
        std::vector<TuneAction> first =
            enumerate_actions(p, m, ScalarType::F32, sp);
        ASSERT_FALSE(first.empty());
        // Expand a few representative first-generation states.
        for (size_t i = 0; i < first.size(); i += 3) {
            const ProcPtr& q = first[i].result;
            for (const TuneAction& a :
                 enumerate_actions(q, m, ScalarType::F32, sp)) {
                ProcPtr replayed;
                ASSERT_NO_THROW(
                    replayed = tune::apply_tune_step(q, a.step))
                    << name << " via "
                    << verify::step_to_string(first[i].step) << " then "
                    << verify::step_to_string(a.step);
                EXPECT_EQ(proc_digest(replayed), proc_digest(a.result));
            }
        }
    }
}

TEST(TuneActions, EnumerationIsDeterministic)
{
    const Machine& m = machine_avx2();
    TuneSpace sp = space_for(m, ScalarType::F32);
    ProcPtr p = kernels::find_kernel("sgemv_n").proc;
    auto a = enumerate_actions(p, m, ScalarType::F32, sp);
    auto b = enumerate_actions(p, m, ScalarType::F32, sp);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(verify::step_to_string(a[i].step),
                  verify::step_to_string(b[i].step));
        EXPECT_EQ(proc_digest(a[i].result), proc_digest(b[i].result));
    }
}

// -- Step / script serialization round-trips ----------------------------

TEST(TuneScript, StepStringRoundTrip)
{
    std::vector<FuzzStep> steps = {
        {"t_vectorize", {3, 1}, {"AVX2", "f32"}},
        {"t_divide", {0, 64, 0}, {"io", "ii"}},
        {"t_uaj", {2, 4}, {}},
        {"divide", {12, 4, 2}, {"fz1o", "fz1i"}},
        {"simplify", {}, {}},
    };
    for (const FuzzStep& st : steps) {
        FuzzStep rt = verify::step_from_string(verify::step_to_string(st));
        EXPECT_EQ(rt.op, st.op);
        EXPECT_EQ(rt.n, st.n);
        EXPECT_EQ(rt.s, st.s);
    }
    std::string script = verify::script_to_string(steps);
    std::vector<FuzzStep> back = verify::script_from_string(script);
    ASSERT_EQ(back.size(), steps.size());
    for (size_t i = 0; i < steps.size(); i++)
        EXPECT_EQ(verify::step_to_string(back[i]),
                  verify::step_to_string(steps[i]));
    EXPECT_THROW(verify::step_from_string("garbage"), SchedulingError);
    EXPECT_THROW(verify::step_from_string("op[1,x]"), SchedulingError);
    // A whole script joined onto one line is NOT one step — it must be
    // rejected, not silently absorbed into a garbage name operand.
    EXPECT_THROW(
        verify::step_from_string("t_divide[0,64,0;io,ii]; t_uaj[2,4]"),
        SchedulingError);
    EXPECT_THROW(verify::step_from_string("op[1;a]b]"), SchedulingError);
}

// -- proc_digest --------------------------------------------------------

TEST(TuneDigest, StructuralNotProvenance)
{
    ProcPtr p = kernels::find_kernel("saxpy").proc;
    // Two different derivation orders reaching the same structure give
    // the same digest.
    FuzzStep d1{"t_divide", {0, 4, 0}, {"io", "ii"}};
    ProcPtr a = tune::apply_tune_step(p, d1);
    ProcPtr b = tune::apply_tune_step(p, d1);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(proc_digest(a), proc_digest(b));
    EXPECT_NE(proc_digest(a), proc_digest(p));
    // Renaming keeps the digest (cost does not depend on the name).
    EXPECT_EQ(proc_digest(p->renamed("other")), proc_digest(p));
}

// -- Satellite: cost-cache hit/miss accounting --------------------------

TEST(TuneCostCache, HitsOnRepeatAndInvalidates)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = x[i] + 1.0
)");
    set_cost_sim_cache_enabled(true);
    clear_cost_sim_cache();
    reset_cost_sim_cache_stats();

    CostResult r1 = simulate_cost_named(p, {{"n", 64}});
    CostSimCacheStats s1 = cost_sim_cache_stats();
    EXPECT_EQ(s1.hits, 0u);
    EXPECT_EQ(s1.misses, 1u);

    CostResult r2 = simulate_cost_named(p, {{"n", 64}});
    CostSimCacheStats s2 = cost_sim_cache_stats();
    EXPECT_EQ(s2.hits, 1u);
    EXPECT_EQ(s2.misses, 1u);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.dram_accesses, r2.dram_accesses);

    // Different sizes and different configs are different keys.
    simulate_cost_named(p, {{"n", 65}});
    CostConfig cfg;
    cfg.l1_kb = 16;
    simulate_cost_named(p, {{"n", 64}}, cfg);
    CostSimCacheStats s3 = cost_sim_cache_stats();
    EXPECT_EQ(s3.hits, 1u);
    EXPECT_EQ(s3.misses, 3u);

    // A structurally identical clone of the proc hits (digest key).
    ProcPtr q = parse_proc(print_proc(p));
    simulate_cost_named(q, {{"n", 64}});
    EXPECT_EQ(cost_sim_cache_stats().hits, 2u);

    // Disabling bypasses and clears.
    set_cost_sim_cache_enabled(false);
    simulate_cost_named(p, {{"n", 64}});
    EXPECT_EQ(cost_sim_cache_stats().hits, 2u);
    set_cost_sim_cache_enabled(true);
}

// -- Satellite: tuner determinism ---------------------------------------

TEST(TuneSearch, SameSeedSameWinnerAndReplayBitForBit)
{
    ProcPtr p = kernels::find_kernel("saxpy").proc;
    TuneOpts o;
    o.tune_sizes = {{"n", 512}};
    o.beam_width = 3;
    o.max_rounds = 3;
    o.random_restarts = 2;
    o.seed = 12345;
    o.jit_topk = 0;  // cost-model only: fully deterministic

    tune::TuneResult r1 = tune::autotune(p, machine_avx2(), o);
    tune::TuneResult r2 = tune::autotune(p, machine_avx2(), o);

    EXPECT_EQ(verify::script_to_string(r1.script),
              verify::script_to_string(r2.script));
    EXPECT_EQ(proc_digest(r1.best), proc_digest(r2.best));
    EXPECT_EQ(r1.cost, r2.cost);

    // Replaying the emitted script reproduces the winner bit-for-bit.
    ProcPtr replayed = tune::replay_script(p, r1.script);
    EXPECT_EQ(proc_digest(replayed), proc_digest(r1.best));
    EXPECT_EQ(print_proc(replayed), print_proc(r1.best));

    // And the search actually helped, with a validated winner.
    EXPECT_LT(r1.cost, r1.naive_cost);
    EXPECT_TRUE(r1.validated);
}

TEST(TuneSearch, GreedyModeAndStatsAccounting)
{
    ProcPtr p = kernels::find_kernel("sdot").proc;
    TuneOpts o;
    o.tune_sizes = {{"n", 512}};
    o.beam_width = 1;  // greedy descent
    o.max_rounds = 3;

    clear_cost_sim_cache();
    tune::TuneResult r = tune::autotune(p, machine_avx2(), o);
    EXPECT_LT(r.cost, r.naive_cost);
    EXPECT_TRUE(r.validated);
    EXPECT_GE(r.stats.rounds, 1);
    EXPECT_GT(r.stats.actions_enumerated, 0);
    EXPECT_GT(r.stats.states_scored, 0);
    EXPECT_EQ(r.stats.cost_cache_misses,
              static_cast<uint64_t>(r.stats.states_scored));

    // A second identical run scores everything out of the cost cache.
    tune::TuneResult r2 = tune::autotune(p, machine_avx2(), o);
    EXPECT_EQ(r2.stats.cost_cache_misses, 0u);
    EXPECT_EQ(r2.stats.cost_cache_hits,
              static_cast<uint64_t>(r2.stats.states_scored));
}

TEST(TuneSearch, RejectsMissingAndInvalidSizes)
{
    ProcPtr p = kernels::find_kernel("saxpy").proc;
    TuneOpts o;  // no tune_sizes
    EXPECT_THROW(tune::autotune(p, machine_avx2(), o), SchedulingError);

    // Sizes violating the proc's own assertions are a config error.
    TuneOpts ob;
    ob.tune_sizes = {{"H", 7}, {"W", 100}};
    EXPECT_THROW(tune::autotune(kernels::blur(), machine_avx2(), ob),
                 SchedulingError);
}

TEST(TuneSearch, JitRerankSmoke)
{
    // End-to-end with measured refinement: compile top-2, pick by wall
    // clock, still validated and replayable. (ISA comes from
    // EXO2_NATIVE_ISA; scalar by default.)
    ProcPtr p = kernels::find_kernel("saxpy").proc;
    TuneOpts o;
    o.tune_sizes = {{"n", 512}};
    o.measure_sizes = {{"n", 4096}};
    o.beam_width = 2;
    o.max_rounds = 2;
    o.jit_topk = 2;
    tune::TuneResult r = tune::autotune(p, machine_avx2(), o);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.stats.jit_measured, 0);
    EXPECT_GT(r.measured_seconds, 0.0);
    EXPECT_EQ(proc_digest(tune::replay_script(p, r.script)),
              proc_digest(r.best));
}

// -- Machine cost-query surface -----------------------------------------

TEST(TuneMachine, TileHintsAndLookup)
{
    CostConfig cfg;
    TileHints h = tile_hints(machine_avx2(), ScalarType::F32, cfg);
    EXPECT_EQ(h.vec_width, 8);
    ASSERT_FALSE(h.split_factors.empty());
    EXPECT_EQ(h.split_factors[0], 8);
    for (int64_t t : h.cache_tiles) {
        EXPECT_GT(t, h.vec_width);
        EXPECT_EQ(t % h.vec_width, 0);
    }
    TileHints h64 = tile_hints(machine_avx512(), ScalarType::F64, cfg);
    EXPECT_EQ(h64.vec_width, 8);

    EXPECT_EQ(&find_machine("AVX2"), &machine_avx2());
    EXPECT_EQ(&find_machine("avx512"), &machine_avx512());
    EXPECT_THROW(find_machine("riscv"), SchedulingError);
}

}  // namespace
}  // namespace exo2
