/**
 * @file
 * Higher-order scheduling tests (Sections 3.4, 6.1.2, 6.3.1): the
 * seq/repeat/try_else combinators, ELEVATE-style reframing with
 * linear-time references, post-order traversal, and the Figure 5c
 * statement-hoisting program.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/printer.h"
#include "src/sched/combinators.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using namespace exo2::sched;
using testing_support::expect_equiv;

TEST(Combinators, RepeatStopsOnError)
{
    // repeat(lift_alloc) lifts an allocation as far as possible (3.4).
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        for j in seq(0, 4):
            t: f32 @ DRAM
            t = x[i]
            x[i] = t + 1.0
)");
    Cursor alloc = p->find_alloc("t");
    COp lift_alloc_op = lift([](const ProcPtr& pp, const Cursor& c) {
        return lift_alloc(pp, c);
    });
    auto [p2, c2] = repeat_op(lift_alloc_op)(p, alloc);
    // Lifted out of both loops to the top level.
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::Alloc);
    EXPECT_TRUE(c2.is_valid());
    expect_equiv(p, p2, {{"n", 5}});
}

TEST(Combinators, TryElseFallsBack)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)");
    Cursor loop = p->find_loop("i");
    bool fallback_ran = false;
    COp bad = lift([](const ProcPtr& pp, const Cursor& c) -> ProcPtr {
        // Perfect division by 7 is unprovable: raises SchedulingError.
        return divide_loop(pp, c, 7, {"a", "b"}, TailStrategy::Perfect);
    });
    COp good = lift([&](const ProcPtr& pp, const Cursor& c) -> ProcPtr {
        fallback_ran = true;
        return divide_loop(pp, c, 7, {"a", "b"}, TailStrategy::Cut);
    });
    auto [p2, c2] = try_else(bad, good)(p, loop);
    (void)c2;
    EXPECT_TRUE(fallback_ran);
    expect_equiv(p, p2, {{"n", 13}});
}

TEST(Combinators, ReframeRestoresCursor)
{
    // reframe navigates, acts, and restores the frame (6.3.1).
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    x[0] = 1.0
    y[0] = 2.0
)");
    Cursor second = p->find("y[_] = _");
    // reorder_before = reframe(expand(1,0), lift(reorder_stmts)).
    ProcPtr p2 = reorder_before(p, second);
    EXPECT_EQ(p2->body_stmts()[0]->name(), "y");
    expect_equiv(p, p2, {});
}

TEST(Combinators, LrnPostorder)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        for j in seq(0, 4):
            if j < 2:
                x[i] = 1.0
)");
    auto order = lrn(p->find_loop("i"));
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0].stmt()->kind(), StmtKind::If);
    EXPECT_EQ(order[1].stmt()->iter(), "j");
    EXPECT_EQ(order[2].stmt()->iter(), "i");
}

TEST(Combinators, HoistStmtFigure5)
{
    // The Figure 5 scenario: hoist a config write out of a loop nest.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[8, 8] @ DRAM):
    assert n > 0
    for io in seq(0, n):
        for jo in seq(0, n):
            cfg.stride = 8
            for ii in seq(0, 8):
                x[ii, 0] = 1.0
)");
    Cursor config = p->find("cfg.stride = _");
    ProcPtr p2 = hoist_stmt(p, config);
    // The configuration write reached the top of the procedure.
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::WriteConfig)
        << print_proc(p2);
    expect_equiv(p, p2, {{"n", 2}});
}

TEST(Combinators, InnermostLoops)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        for j in seq(0, 4):
            x[i] = 1.0
    for k in seq(0, n):
        y[k] = 2.0
)");
    auto inner = innermost_loops(p);
    ASSERT_EQ(inner.size(), 2u);
    EXPECT_EQ(inner[0].stmt()->iter(), "j");
    EXPECT_EQ(inner[1].stmt()->iter(), "k");
}

}  // namespace
}  // namespace exo2
