/**
 * @file
 * Gemmini library tests (Section 6.1.2, Appendix B): instruction
 * mapping, scratchpad staging, configuration hoisting via the
 * Figure 5c combinator program, and interpreter equivalence.
 */

#include <gtest/gtest.h>

#include "src/ir/printer.h"
#include "src/machine/cost_sim.h"
#include "src/sched/gemmini_lib.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using sched::gemmini_matmul_kernel;
using sched::GemminiScheduleOpts;
using sched::schedule_gemmini_matmul;
using testing_support::expect_equiv;

TEST(Gemmini, FullSchedule)
{
    ProcPtr p = gemmini_matmul_kernel();
    ProcPtr s;
    ASSERT_NO_THROW(s = schedule_gemmini_matmul(p));
    std::string printed = print_proc(s);
    EXPECT_NE(printed.find("do_matmul_acc_i8"), std::string::npos)
        << printed;
    EXPECT_NE(printed.find("do_ld_i8_block_id1"), std::string::npos);
    EXPECT_NE(printed.find("do_ld_i8_block_id2"), std::string::npos);
    EXPECT_NE(printed.find("do_zero_acc_i32"), std::string::npos);
    EXPECT_NE(printed.find("do_st_acc_i8"), std::string::npos);
    EXPECT_NE(printed.find("GEMM_SCRATCH"), std::string::npos);
    EXPECT_NE(printed.find("GEMM_ACCUM"), std::string::npos);
    // Configs hoisted: the proc body starts with configuration calls.
    const auto& body = s->body_stmts();
    int leading_configs = 0;
    for (const auto& st : body) {
        if (st->kind() == StmtKind::Call && st->callee()->is_instr() &&
            st->callee()->instr()->instr_class == "config") {
            leading_configs++;
        } else {
            break;
        }
    }
    EXPECT_EQ(leading_configs, 5) << printed;
    expect_equiv(p, s, {{"N", 16}, {"M", 32}}, 1e-6);
    expect_equiv(p, s, {{"N", 32}, {"M", 16}}, 1e-6);
}

TEST(Gemmini, HoistingReducesConfigTraffic)
{
    ProcPtr p = gemmini_matmul_kernel();
    GemminiScheduleOpts no_hoist;
    no_hoist.hoist_configs = false;
    ProcPtr naive = schedule_gemmini_matmul(p, no_hoist);
    ProcPtr hoisted = schedule_gemmini_matmul(p);
    expect_equiv(naive, hoisted, {{"N", 16}, {"M", 16}}, 1e-6);

    CostConfig cfg;
    cfg.host_penalty = 4.0;
    auto cost = [&](const ProcPtr& q) {
        return simulate_cost_named(q, {{"N", 64}, {"M", 64}}, cfg);
    };
    CostResult a = cost(naive);
    CostResult b = cost(hoisted);
    EXPECT_GT(a.config_writes, b.config_writes * 10);
    EXPECT_GT(a.cycles, b.cycles);
}

}  // namespace
}  // namespace exo2
