/**
 * @file
 * Tests for the user-space vectorizer (Section 6.1.1): structural
 * checks (the right instructions appear) plus interpreter equivalence
 * across sizes including ragged tails.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/sched/vectorize.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using sched::vectorize;
using sched::VectorizeOpts;
using testing_support::expect_equiv;

const char* kAxpy = R"(
def axpy(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += a * x[i]
)";

TEST(Vectorize, AxpyAvx2Structure)
{
    ProcPtr p = parse_proc(kAxpy);
    ProcPtr v = vectorize(p, p->find_loop("i"), machine_avx2(),
                          ScalarType::F32);
    std::string printed = print_proc(v);
    EXPECT_NE(printed.find("mm256_set1_ps"), std::string::npos) << printed;
    EXPECT_NE(printed.find("mm256_loadu_ps"), std::string::npos);
    EXPECT_NE(printed.find("mm256_fmadd_ps"), std::string::npos);
    EXPECT_NE(printed.find("mm256_storeu_ps"), std::string::npos);
    for (int64_t n : {8, 16, 24})
        expect_equiv(p, v, {{"n", n}});
}

TEST(Vectorize, AxpyCutTailEquivalence)
{
    ProcPtr p = parse_proc(kAxpy);
    ProcPtr v = vectorize(p, p->find_loop("i"), machine_avx2(),
                          ScalarType::F32);
    for (int64_t n : {1, 5, 13, 27})
        expect_equiv(p, v, {{"n", n}});
}

TEST(Vectorize, AxpyNoFmaStaging)
{
    // Figure 4b: without FMA, staging uses an explicit add.
    ProcPtr p = parse_proc(kAxpy);
    VectorizeOpts opts;
    opts.use_fma = false;
    ProcPtr v = vectorize(p, p->find_loop("i"), machine_avx2(),
                          ScalarType::F32, opts);
    std::string printed = print_proc(v);
    EXPECT_EQ(printed.find("fmadd"), std::string::npos) << printed;
    EXPECT_NE(printed.find("mm256_add_ps"), std::string::npos) << printed;
    EXPECT_NE(printed.find("mm256_mul_ps"), std::string::npos);
    for (int64_t n : {8, 11})
        expect_equiv(p, v, {{"n", n}});
}

TEST(Vectorize, DotReduction)
{
    const char* kDot = R"(
def dot(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, res: f32[1] @ DRAM):
    for i in seq(0, n):
        res[0] += x[i] * y[i]
)";
    ProcPtr p = parse_proc(kDot);
    ProcPtr v = vectorize(p, p->find_loop("i"), machine_avx2(),
                          ScalarType::F32);
    std::string printed = print_proc(v);
    EXPECT_NE(printed.find("mm256_setzero_ps"), std::string::npos)
        << printed;
    EXPECT_NE(printed.find("mm256_reduce_add_ps"), std::string::npos);
    EXPECT_NE(printed.find("mm256_fmadd_ps"), std::string::npos);
    for (int64_t n : {8, 24, 13})
        expect_equiv(p, v, {{"n", n}}, 2e-4);
}

TEST(Vectorize, ScalCopyAbs)
{
    const char* kScal = R"(
def scal(n: size, a: f32, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = a * x[i]
)";
    ProcPtr p = parse_proc(kScal);
    ProcPtr v = vectorize(p, p->find_loop("i"), machine_avx2(),
                          ScalarType::F32);
    EXPECT_NE(print_proc(v).find("mm256_mul_ps"), std::string::npos)
        << print_proc(v);
    for (int64_t n : {16, 9})
        expect_equiv(p, v, {{"n", n}});

    const char* kAsumBody = R"(
def asum(n: size, x: f32[n] @ DRAM, res: f32[1] @ DRAM):
    for i in seq(0, n):
        res[0] += abs(x[i])
)";
    ProcPtr pa = parse_proc(kAsumBody);
    ProcPtr va = vectorize(pa, pa->find_loop("i"), machine_avx2(),
                           ScalarType::F32);
    EXPECT_NE(print_proc(va).find("mm256_abs_ps"), std::string::npos)
        << print_proc(va);
    for (int64_t n : {8, 19})
        expect_equiv(pa, va, {{"n", n}}, 2e-4);
}

TEST(Vectorize, Float64Avx512)
{
    const char* kDaxpy = R"(
def daxpy(n: size, a: f64, x: f64[n] @ DRAM, y: f64[n] @ DRAM):
    for i in seq(0, n):
        y[i] += a * x[i]
)";
    ProcPtr p = parse_proc(kDaxpy);
    ProcPtr v = vectorize(p, p->find_loop("i"), machine_avx512(),
                          ScalarType::F64);
    std::string printed = print_proc(v);
    EXPECT_NE(printed.find("mm512_fmadd_pd"), std::string::npos) << printed;
    for (int64_t n : {8, 21})
        expect_equiv(p, v, {{"n", n}}, 1e-10);
}

TEST(Vectorize, PredicatedTail)
{
    ProcPtr p = parse_proc(kAxpy);
    VectorizeOpts opts;
    opts.tail = TailStrategy::CutAndGuard;  // masked tail on pred machines
    ProcPtr v = vectorize(p, p->find_loop("i"), machine_avx512(),
                          ScalarType::F32, opts);
    std::string printed = print_proc(v);
    EXPECT_NE(printed.find("mm512_maskz_loadu_ps"), std::string::npos)
        << printed;
    EXPECT_NE(printed.find("mm512_mask_storeu_ps"), std::string::npos);
    for (int64_t n : {16, 7, 23, 1})
        expect_equiv(p, v, {{"n", n}});
}

TEST(Vectorize, MaskedPreGuardedLoop)
{
    // The opt_skinny shape: a rounded loop with an explicit guard.
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for j in seq(0, (n + 7) / 8 * 8):
        if j < n:
            y[j] += 2.0 * x[j]
)";
    ProcPtr p = parse_proc(src);
    VectorizeOpts opts;
    opts.masked = true;
    ProcPtr v = vectorize(p, p->find_loop("j"), machine_avx2(),
                          ScalarType::F32, opts);
    std::string printed = print_proc(v);
    EXPECT_NE(printed.find("mm256_maskz_loadu_ps"), std::string::npos)
        << printed;
    for (int64_t n : {8, 5, 17})
        expect_equiv(p, v, {{"n", n}});
}

TEST(Vectorize, InterleaveLoop)
{
    ProcPtr p = parse_proc(kAxpy);
    std::string vo;
    ProcPtr v = vectorize(p, p->find_loop("i"), machine_avx2(),
                          ScalarType::F32, VectorizeOpts(), &vo);
    ProcPtr v2 = sched::interleave_loop(v, v->find_loop(vo), 4);
    // Four fma calls in the unrolled body.
    std::string printed = print_proc(v2);
    size_t count = 0;
    for (size_t pos = printed.find("mm256_fmadd_ps");
         pos != std::string::npos;
         pos = printed.find("mm256_fmadd_ps", pos + 1)) {
        count++;
    }
    EXPECT_GE(count, 4u) << printed;
    for (int64_t n : {64, 40, 13})
        expect_equiv(p, v2, {{"n", n}});
}

TEST(Vectorize, CseReads)
{
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, z: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += x[i] * x[i]
        z[i] += x[i] * 2.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr c = sched::cse_reads(p, p->find_loop("i"));
    std::string printed = print_proc(c);
    // x[i] loaded once into a cse temp.
    EXPECT_NE(printed.find("cse"), std::string::npos) << printed;
    for (int64_t n : {4, 9})
        expect_equiv(p, c, {{"n", n}});
}

}  // namespace
}  // namespace exo2
