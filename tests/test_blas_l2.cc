/**
 * @file
 * Integration tests: optimize_level_2_general across the 50 level-2
 * kernel variants (Section 6.2.2) and the skinny-matrix schedule
 * (Figure 7).
 */

#include <gtest/gtest.h>

#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/sched/blas.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using kernels::blas_level2;
using kernels::KernelDef;
using sched::opt_skinny;
using sched::optimize_level_2_general;
using testing_support::expect_equiv;

std::map<std::string, int64_t>
sizes_for(const KernelDef& k, int64_t m, int64_t n)
{
    std::map<std::string, int64_t> out;
    if (k.proc->find_arg("M"))
        out["M"] = m;
    if (k.proc->find_arg("N"))
        out["N"] = n;
    return out;
}

class Level2Param : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Level2Param, OptimizeAndCheck)
{
    const KernelDef& k = kernels::find_kernel(GetParam());
    const Machine& m = machine_avx2();
    ProcPtr opt;
    ASSERT_NO_THROW(opt = optimize_level_2_general(
                        k.proc, k.proc->find_loop(k.main_loop), k.prec, m,
                        2, 2))
        << k.name;
    double tol = k.prec == ScalarType::F64 ? 1e-9 : 5e-4;
    // trsv solves amplify rounding; loosen their tolerance.
    if (k.name.find("trsv") != std::string::npos)
        tol = k.prec == ScalarType::F64 ? 1e-6 : 2e-2;
    for (auto [mm, nn] : {std::pair<int64_t, int64_t>{8, 8},
                          {13, 9},
                          {16, 24},
                          {1, 1},
                          {5, 32}}) {
        expect_equiv(k.proc, opt, sizes_for(k, mm, nn), tol);
    }
}

std::vector<std::string>
all_level2_names()
{
    std::vector<std::string> out;
    for (const auto& k : blas_level2())
        out.push_back(k.name);
    return out;
}

std::string
l2_param_name(const ::testing::TestParamInfo<std::string>& info)
{
    std::string n = info.param;
    for (auto& c : n) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Level2Param,
                         ::testing::ValuesIn(all_level2_names()),
                         l2_param_name);

TEST(OptSkinny, GemvNonTranspose)
{
    const KernelDef& k = kernels::find_kernel("sgemv_n");
    // Fix the skinny dimension (paper: N = 40) and schedule.
    ProcPtr fixed = partial_eval(k.proc, "N", 40);
    ProcPtr opt;
    ASSERT_NO_THROW(opt = opt_skinny(fixed,
                                     fixed->find_loop(k.main_loop),
                                     k.prec, machine_avx2(), 40))
        << print_proc(fixed);
    std::string printed = print_proc(opt);
    EXPECT_NE(printed.find("maskz_loadu"), std::string::npos) << printed;
    for (int64_t m : {1, 4, 17})
        expect_equiv(fixed, opt, {{"M", m}}, 5e-4);
}

TEST(OptSkinny, GemvTransposeStagesOutput)
{
    const KernelDef& k = kernels::find_kernel("dgemv_t");
    // Transposed: the reused vector is the output y (Figure 7c).
    ProcPtr fixed = partial_eval(k.proc, "N", 20);
    ProcPtr opt;
    ASSERT_NO_THROW(opt = opt_skinny(fixed,
                                     fixed->find_loop(k.main_loop),
                                     k.prec, machine_avx2(), 20));
    std::string printed = print_proc(opt);
    // Output staged: masked stores write y back after the i loop.
    EXPECT_NE(printed.find("mask_storeu"), std::string::npos) << printed;
    for (int64_t m : {1, 3, 9})
        expect_equiv(fixed, opt, {{"M", m}}, 1e-9);
}

TEST(OptSkinny, Ger)
{
    const KernelDef& k = kernels::find_kernel("sger");
    ProcPtr fixed = partial_eval(k.proc, "N", 24);
    ProcPtr opt;
    ASSERT_NO_THROW(opt = opt_skinny(fixed,
                                     fixed->find_loop(k.main_loop),
                                     k.prec, machine_avx2(), 24));
    for (int64_t m : {2, 7})
        expect_equiv(fixed, opt, {{"M", m}}, 5e-4);
}

}  // namespace
}  // namespace exo2
