/**
 * @file
 * Differential verification subsystem tests (DESIGN.md §4).
 *
 * Three layers:
 *  1. Directed floor-division/modulo semantics tests across the
 *     simplifier, the interpreter, and the C backend (the C backend
 *     used to emit truncating `/` and `%`).
 *  2. Minimized regression tests for every divergence the schedule
 *     fuzzer found during development (scope capture by specialize /
 *     add_loop / fuse / join_loops, binder-blind reorder_stmts /
 *     inline_assign / access rewriting, uninitialized locals and
 *     duplicate declarations in generated C, condition hoisting in
 *     lift_scope).
 *  3. Tri-oracle parity for every kernel scheduled through the
 *     sched/ library entry points, plus the seeded fuzz loop itself
 *     (>= 200 random schedules across >= 5 kernels by default;
 *     EXO2_VERIFY_FUZZ_SEEDS scales the budget).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/analysis/context.h"
#include "src/codegen/c_codegen.h"
#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/primitives/primitives.h"
#include "src/sched/blas.h"
#include "src/sched/gemm.h"
#include "src/sched/halide.h"
#include "src/verify/verify.h"

namespace exo2 {
namespace {

using verify::apply_fuzz_step;
using verify::fuzz_repro_string;
using verify::fuzz_schedule;
using verify::FuzzResult;
using verify::FuzzStep;
using verify::SizeEnv;
using verify::tri_oracle_check;

// ---- 1. Floor division / modulo across all three layers -----------------

TEST(FloorDivMod, SimplifierConstantFolding)
{
    ProcPtr dummy = parse_proc(R"(
def d(n: size, x: f32[n] @ DRAM):
    pass
)");
    Context ctx = Context::at(dummy, {});
    SizeEnv none;
    auto fold = [&](const ExprPtr& e) {
        // simplify renders negative constants as USub(Const); evaluate
        // the folded form rather than matching its shape.
        return verify::eval_index_expr(simplify_expr(ctx, e), none);
    };
    // Negative numerator: floor, not truncation ([0, c) remainder).
    EXPECT_EQ(fold(idx_const(-7) / idx_const(2)), -4);
    EXPECT_EQ(fold(idx_const(-7) % idx_const(2)), 1);
    // Exactly divisible and zero numerators are unaffected.
    EXPECT_EQ(fold(idx_const(0) / idx_const(4)), 0);
    EXPECT_EQ(fold(idx_const(-8) / idx_const(2)), -4);
    EXPECT_EQ(fold(idx_const(-8) % idx_const(2)), 0);
}

TEST(FloorDivMod, InterpreterFloorSemantics)
{
    // y[i] = x[(i - n)/2 + n] exercises negative numerators at runtime.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[(i - n) / 2 + n]
)");
    Buffer x(ScalarType::F32, {4});
    Buffer y(ScalarType::F32, {4});
    for (int i = 0; i < 4; i++)
        x.set(i, 10.0 + i);
    interp_run(p, {RunArg::make_size(4), RunArg::make_buffer(&x),
                   RunArg::make_buffer(&y)});
    // floor((i-4)/2)+4 for i=0..3 is 2, 2, 3, 3 (truncation gives
    // 2, 3, 3, 4 — the last of which is out of bounds).
    EXPECT_EQ(y.at(0), 12.0);
    EXPECT_EQ(y.at(1), 12.0);
    EXPECT_EQ(y.at(2), 13.0);
    EXPECT_EQ(y.at(3), 13.0);
}

TEST(FloorDivMod, CodegenEmitsFloorHelpers)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[(i - 3) % n] + x[(i - n) / 2 + n]
)");
    std::string c = codegen_c(p);
    EXPECT_NE(c.find("exo2_fdiv("), std::string::npos) << c;
    EXPECT_NE(c.find("exo2_fmod("), std::string::npos) << c;
    std::string unit = codegen_c_unit(p);
    EXPECT_NE(unit.find("static inline int64_t exo2_fdiv"),
              std::string::npos);
    EXPECT_NE(unit.find("static inline int64_t exo2_fmod"),
              std::string::npos);
}

TEST(FloorDivMod, TriOracleNegativeDiv)
{
    // Before the fix, C's truncating `/` indexed x[4] out of bounds
    // (caught by the guard canaries) and disagreed with the
    // interpreter on i = 1.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[(i - n) / 2 + n]
)");
    auto rep = tri_oracle_check(p, p, {{"n", 4}}, 11);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(FloorDivMod, TriOracleNegativeMod)
{
    // Floor-mod keeps (i - 3) % n in [0, n); C's truncating `%` went
    // negative for i < 3 and read out of bounds.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[(i - 3) % n]
)");
    auto rep = tri_oracle_check(p, p, {{"n", 5}}, 12);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

// ---- 2. Minimized regressions from fuzzer-found divergences -------------

TEST(FuzzRegression, ReorderStmtsRefusesAllocPastUse)
{
    // Found on drot: effects analysis sees no data conflict between an
    // Alloc and a write to the alloc'd name, so reorder_stmts happily
    // moved the declaration after its first use.
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    t: f32 @ DRAM
    t = x[0]
    x[0] = t
)");
    Cursor alloc = p->find_alloc("t");
    Cursor use = p->find("t = _");
    EXPECT_THROW(reorder_stmts(p, alloc, use), SchedulingError);
}

TEST(FuzzRegression, SpecializeRefusesEscapingAlloc)
{
    // Found on drot: specializing just the Alloc statement moved the
    // declaration into the if's branches, leaving later uses unbound.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        t: f32 @ DRAM
        t = x[i]
        x[i] = t
)");
    Cursor alloc = p->find_alloc("t");
    ExprPtr cond = Expr::make_binop(
        BinOpKind::Eq, Expr::make_binop(BinOpKind::Mod, var("n"),
                                        idx_const(2)),
        idx_const(0));
    EXPECT_THROW(specialize(p, alloc, {cond}), SchedulingError);
}

TEST(FuzzRegression, AddLoopRefusesEscapingAlloc)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        t: f32 @ DRAM
        t = x[i]
        x[i] = t
)");
    Cursor alloc = p->find_alloc("t");
    EXPECT_THROW(add_loop(p, alloc, "k", idx_const(2), /*guard=*/true),
                 SchedulingError);
}

TEST(FuzzRegression, InlineAssignRefusesLiveOutsideScope)
{
    // Found on drot: the assignment sat alone inside a guarded loop
    // inserted by add_loop; inline_assign deleted it although the
    // destination is read after the loop.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        t: f32 @ DRAM
        for k in seq(0, 1):
            t = x[i] * 2.0
        x[i] = t
)");
    Cursor assign = p->find("t = _");
    EXPECT_THROW(inline_assign(p, assign), SchedulingError);
}

TEST(FuzzRegression, ShadowedBranchSurvivesExpandDim)
{
    // Minimized from drot seed 38007: add_loop + specialize duplicate
    // the body; lift_alloc hoists the then-branch's alloc to the top;
    // expand_dim on it must NOT rewrite the else-branch accesses that
    // bind to the (shadowing) inner declaration.
    ProcPtr p = kernels::find_kernel("drot").proc;
    std::vector<FuzzStep> steps = {
        {"add_loop", {351202, 911829, 575302}, {"fzl4"}},
        {"specialize_size", {478206, 187113, 320796}, {}},
        {"lift_alloc", {784616, 537881, 131891}, {}},
        {"expand_dim", {470114, 1047226, 674767}, {}},
    };
    ProcPtr cur = p;
    for (const auto& st : steps)
        ASSERT_NO_THROW(cur = apply_fuzz_step(cur, st));
    // The else branch keeps its scalar accesses (its own binder).
    std::string printed = print_proc(cur);
    EXPECT_NE(printed.find("x[i] = xt\n"), std::string::npos) << printed;
    auto rep = tri_oracle_check(p, cur, {{"n", 17}}, 38007);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(FuzzRegression, DuplicateUnrolledAllocSurvivesExpandDim)
{
    // Minimized from drot seed 128007: unroll_loop copies the body of
    // a divided loop, duplicating the xt Alloc within one list; the
    // second declaration shadows the first, so expand_dim on the first
    // must stop rewriting at it (it used to index the still-scalar
    // second xt).
    ProcPtr p = kernels::find_kernel("drot").proc;
    std::vector<FuzzStep> steps = {
        {"divide", {97186, 3, 555190}, {"fz6o", "fz6i"}},
        {"unroll", {901369, 9528, 240498}, {}},
        {"expand_dim", {310733, 616438, 747705}, {}},
    };
    ProcPtr cur = p;
    for (const auto& st : steps)
        ASSERT_NO_THROW(cur = apply_fuzz_step(cur, st));
    auto rep = tri_oracle_check(p, cur, {{"n", 17}}, 128007);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(FuzzRegression, SinkAllocRefusesElseBranchUses)
{
    // Minimized from strmv_lnn seed 122007: specialize duplicated the
    // uses of a hoisted temp into both branches of an if; sink_alloc
    // then moved the declaration into the then-branch only, leaving
    // the else-branch writes unbound.
    ProcPtr p = kernels::find_kernel("strmv_lnn").proc;
    std::vector<FuzzStep> steps = {
        {"divide", {487725, 2, 350438}, {"fz1o", "fz1i"}},
        {"bind_expr", {322795, 196594, 1042061}, {"fzb2"}},
        {"lift_alloc", {792222, 43315, 394401}, {}},
        {"specialize_data", {395233, 95150, 555721}, {}},
    };
    ProcPtr cur = p;
    for (const auto& st : steps)
        ASSERT_NO_THROW(cur = apply_fuzz_step(cur, st));
    EXPECT_THROW(apply_fuzz_step(
                     cur, {"sink_alloc", {452684, 644764, 606769}, {}}),
                 SchedulingError);
    auto rep = tri_oracle_check(p, cur, {{"N", 13}}, 122007);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(FuzzRegression, FuseRefusesIteratorCapture)
{
    // Minimized from strmv_lnn seed 27007: fusing two divide_loop
    // products renamed the first loop's iterator to `fz22i`, which a
    // loop nested in the first body re-binds — the substituted
    // references were captured and indexed out of bounds.
    ProcPtr p = parse_proc(R"(
def f(x: f32[8] @ DRAM):
    for a in seq(0, 2):
        for b in seq(0, 3):
            x[3 * a + b] = 1.0
    for b in seq(0, 2):
        x[b] = x[b] + 1.0
)");
    Cursor l1 = p->find_loop("a");
    Cursor l2 = p->find_loop("b #1");
    EXPECT_THROW(fuse(p, l1, l2), SchedulingError);
}

TEST(FuzzRegression, JoinLoopsRefusesIteratorCapture)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[8] @ DRAM):
    for a in seq(0, 2):
        x[a] = 1.0
    for c in seq(2, 4):
        for a in seq(0, 1):
            x[c + a] = 1.0
)");
    Cursor l1 = p->find_loop("a");
    Cursor l2 = p->find_loop("c");
    EXPECT_THROW(join_loops(p, l1, l2), SchedulingError);
}

TEST(FuzzRegression, UnrolledDuplicateLocalsStillCompile)
{
    // unroll_loop copies the body, Alloc included: the C backend used
    // to emit two `float t;` declarations in one scope.
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    for i in seq(0, 4):
        t: f32 @ DRAM
        t = x[i]
        x[i] = y[i]
        y[i] = t
)");
    ProcPtr u = unroll_loop(p, p->find_loop("i"));
    std::string c = codegen_c(u);
    EXPECT_NE(c.find("t_2"), std::string::npos) << c;
    auto rep = tri_oracle_check(p, u, {}, 5);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(FuzzRegression, GeneratedCZeroInitializesAllocations)
{
    // The object language zero-fills fresh allocations (the
    // interpreter and the maskz instruction semantics both rely on
    // it); generated C read stack garbage instead.
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    t: f32[4] @ DRAM
    s: f32 @ DRAM
    x[0] = t[3] + s
)");
    std::string c = codegen_c(p);
    EXPECT_NE(c.find("__builtin_memset(t, 0, sizeof(t));"),
              std::string::npos)
        << c;
    EXPECT_NE(c.find("float s = 0;"), std::string::npos) << c;
    auto rep = tri_oracle_check(p, p, {}, 3);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(FuzzRegression, LiftScopeRefusesConditionWrittenByBody)
{
    // for i: if x[0] >= 0: x[0] = -1  re-evaluates the condition each
    // iteration; hoisting the if outside would evaluate it once.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        if x[0] >= 0.0:
            x[0] = 0.0 - 1.0
)");
    Cursor iff = p->find_loop("i").body()[0];
    EXPECT_THROW(lift_scope(p, iff), SchedulingError);

    // And the converse direction: if x[0] >= 0: for i: x[0] = -1.
    ProcPtr q = parse_proc(R"(
def g(n: size, x: f32[n] @ DRAM):
    if x[0] >= 0.0:
        for i in seq(0, n):
            x[0] = 0.0 - 1.0
)");
    EXPECT_THROW(lift_scope(q, q->find_loop("i")), SchedulingError);
}

TEST(FuzzRegression, WindowDeclUsesBaseStrides)
{
    // The old lowering gave a window declaration dense dims taken from
    // the window's *hi* bounds, mislinearizing every non-suffix
    // 2-D window; strides now come from the base buffer.
    ProcPtr callee = parse_proc(R"(
def fill(dst: [f32][2, 2] @ DRAM):
    for i in seq(0, 2):
        for j in seq(0, 2):
            dst[i, j] = dst[i, j] + 7.0
)");
    // The concrete syntax has no window-declaration statement; build
    // `w = A[1:3, 2:4]; fill(w)` programmatically (stage_mem creates
    // the same shape).
    ProcPtr shell = parse_proc(R"(
def f(A: f32[4, 6] @ DRAM):
    pass
)");
    ExprPtr win = Expr::make_window(
        "A",
        {WindowDim{idx_const(1), idx_const(3)},
         WindowDim{idx_const(2), idx_const(4)}},
        ScalarType::F32);
    StmtPtr wd = Stmt::make_window_decl("w", win, ScalarType::F32);
    StmtPtr call = Stmt::make_call(
        callee, {Expr::make_read("w", {}, ScalarType::F32)});
    ProcPtr p = Proc::make("f", shell->args(), {}, {wd, call});
    auto rep = tri_oracle_check(p, p, {}, 21);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

// ---- 3. Tri-oracle parity for library-scheduled kernels -----------------

TEST(TriOracleParity, Level1AllKernels)
{
    for (const auto& k : kernels::blas_level1()) {
        ProcPtr opt;
        ASSERT_NO_THROW(opt = sched::optimize_level_1(
                            k.proc, k.proc->find_loop(k.main_loop),
                            k.prec, machine_avx2(), 2))
            << k.name;
        // 19 exercises the masked ragged tail.
        auto rep = tri_oracle_check(k.proc, opt, {{"n", 19}}, 1019);
        EXPECT_TRUE(rep.ok) << k.name << ": " << rep.detail;
    }
}

TEST(TriOracleParity, Level2AllKernels)
{
    for (const auto& k : kernels::blas_level2()) {
        ProcPtr opt;
        ASSERT_NO_THROW(opt = sched::optimize_level_2_general(
                            k.proc, k.proc->find_loop(k.main_loop),
                            k.prec, machine_avx2(), 2, 2))
            << k.name;
        SizeEnv env;
        if (k.proc->find_arg("M"))
            env["M"] = 13;
        if (k.proc->find_arg("N"))
            env["N"] = 9;
        // Triangular solves amplify rounding through the recurrence.
        double tol_scale =
            k.name.find("trsv") != std::string::npos ? 1e3 : 1.0;
        auto rep = tri_oracle_check(k.proc, opt, env, 2029, tol_scale);
        EXPECT_TRUE(rep.ok) << k.name << ": " << rep.detail;
    }
}

TEST(TriOracleParity, RegisterTiledSgemm)
{
    ProcPtr base = kernels::sgemm();
    ProcPtr p = sched::sgemm_with_asserts(base, machine_avx2());
    ProcPtr s;
    ASSERT_NO_THROW(s = sched::schedule_sgemm(p, machine_avx2()));
    auto rep = tri_oracle_check(p, s, {{"M", 8}, {"N", 16}, {"K", 5}},
                                3031, /*tol_scale=*/10.0);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(TriOracleParity, HalideBlurAndUnsharp)
{
    ProcPtr blur = kernels::blur();
    ProcPtr sb;
    ASSERT_NO_THROW(
        sb = sched::schedule_blur_like_halide(blur, machine_avx2()));
    auto rep = tri_oracle_check(blur, sb, {{"H", 32}, {"W", 256}}, 4051);
    EXPECT_TRUE(rep.ok) << rep.detail;

    ProcPtr unsharp = kernels::unsharp();
    ProcPtr su;
    ASSERT_NO_THROW(su = sched::schedule_unsharp_like_halide(
                        unsharp, machine_avx2()));
    auto rep2 =
        tri_oracle_check(unsharp, su, {{"H", 32}, {"W", 256}}, 4051);
    EXPECT_TRUE(rep2.ok) << rep2.detail;
}

// ---- 4. The seeded schedule fuzzer --------------------------------------

TEST(VerifyFuzz, RandomSchedulesAgreeAcrossOracles)
{
    struct FK
    {
        std::string name;
        ProcPtr proc;
        SizeEnv env;
        int seeds;
    };
    // Default budget: 5 * 40 + 12 = 212 random schedules (>= 200).
    int per = 40;
    bool custom_budget = false;
    if (const char* env = std::getenv("EXO2_VERIFY_FUZZ_SEEDS")) {
        int v = std::atoi(env);
        if (v > 0) {
            per = v;
            custom_budget = true;
        }
    }
    std::vector<FK> fks = {
        {"saxpy", kernels::find_kernel("saxpy").proc, {{"n", 24}}, per},
        {"drot", kernels::find_kernel("drot").proc, {{"n", 17}}, per},
        {"sgemv_n", kernels::find_kernel("sgemv_n").proc,
         {{"M", 9}, {"N", 13}}, per},
        {"strmv_lnn", kernels::find_kernel("strmv_lnn").proc,
         {{"N", 13}}, per},
        {"sgemm", kernels::sgemm(),
         {{"M", 6}, {"N", 10}, {"K", 7}}, per},
        {"blur", kernels::blur(), {{"H", 32}, {"W", 256}},
         std::max(1, per * 3 / 10)},
    };
    int total = 0;
    for (const auto& fk : fks) {
        for (int s = 0; s < fk.seeds; s++) {
            uint64_t seed = 1000 * static_cast<uint64_t>(s) + 7;
            FuzzResult r = fuzz_schedule(fk.proc, fk.env, seed);
            total++;
            ASSERT_EQ(r.status, FuzzResult::Status::Ok)
                << fuzz_repro_string(fk.name, seed, r);
        }
    }
    if (!custom_budget)
        EXPECT_GE(total, 200);  // the acceptance floor at default budget
}

}  // namespace
}  // namespace exo2
