/**
 * @file
 * Tests for the static schedule-safety analyzer (DESIGN.md §9):
 * golden diagnostics per registry rule, the certifying race analysis
 * behind `parallelize_loop`'s failure messages, a soundness sweep over
 * every scheduled BLAS/image kernel, a fuzzed sweep sharing the
 * tri-oracle corpus, and the tuner lint gate's winner-identity
 * guarantee.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/frontend/parser.h"
#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/lint/lint.h"
#include "src/primitives/primitives.h"
#include "src/sched/blas.h"
#include "src/sched/gemm.h"
#include "src/sched/halide.h"
#include "src/tune/tune.h"
#include "src/verify/fuzz.h"

namespace exo2 {
namespace {

using lint::LintReport;
using lint::Severity;
using verify::FuzzResult;
using verify::SizeEnv;

// -- Golden diagnostics, one per registry rule -----------------------------

TEST(Lint, CleanKernelProvenSafe)
{
    LintReport rep = lint::lint_proc(kernels::find_kernel("saxpy").proc);
    EXPECT_TRUE(rep.diags.empty()) << rep.to_text();
    EXPECT_GT(rep.obligations, 0);
    EXPECT_EQ(rep.proven, rep.obligations);
    EXPECT_TRUE(rep.proven_safe());
    EXPECT_NE(rep.to_json().find("\"proven_safe\":true"),
              std::string::npos)
        << rep.to_json();
}

TEST(Lint, EXL001BoundsUnprovable)
{
    // `i` is an arbitrary size argument: i >= 0 is known, i < n is not.
    ProcPtr p = parse_proc(R"(
def f(n: size, i: size, x: f32[n] @ DRAM):
    x[i] = 1.0
)");
    LintReport rep = lint::lint_proc(p);
    EXPECT_TRUE(rep.has_code("EXL001")) << rep.to_text();
    EXPECT_FALSE(rep.has_errors());
    EXPECT_LT(rep.proven, rep.obligations);
    EXPECT_FALSE(rep.proven_safe());
}

TEST(Lint, EXL002ProvenOutOfBounds)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    x[7] = 1.0
)");
    LintReport rep = lint::lint_proc(p);
    ASSERT_TRUE(rep.has_code("EXL002")) << rep.to_text();
    EXPECT_TRUE(rep.has_errors());
    bool found = false;
    for (const auto& d : rep.diags) {
        if (d.code == "EXL002") {
            found = true;
            EXPECT_EQ(d.severity, Severity::Error);
            EXPECT_EQ(d.pass, "bounds");
            EXPECT_EQ(d.buf, "x");
            EXPECT_FALSE(d.loc.empty());
        }
    }
    EXPECT_TRUE(found);
}

TEST(Lint, EXL002UnreachableIsNotAnError)
{
    // The out-of-bounds store is guarded away: `x[7]` only under
    // `7 < 4`, an infeasible context. Reachability gates Error.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[4] @ DRAM):
    for i in seq(0, n):
        if i < 4:
            if i > 6:
                x[i] = 1.0
)");
    LintReport rep = lint::lint_proc(p);
    EXPECT_FALSE(rep.has_errors()) << rep.to_text();
}

TEST(Lint, EXL004AllocExtentUnprovable)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    t: f32[n - 4] @ DRAM
    for i in seq(0, n - 4):
        t[i] = x[i]
        x[i] = t[i]
)");
    LintReport rep = lint::lint_proc(p);
    EXPECT_TRUE(rep.has_code("EXL004")) << rep.to_text();
    EXPECT_FALSE(rep.has_errors());
}

TEST(Lint, EXL101UninitRead)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    t: f32[4] @ DRAM
    x[0] = t[0]
)");
    LintReport rep = lint::lint_proc(p);
    ASSERT_TRUE(rep.has_code("EXL101")) << rep.to_text();
    for (const auto& d : rep.diags) {
        if (d.code == "EXL101") {
            EXPECT_EQ(d.severity, Severity::Warn);
            EXPECT_EQ(d.buf, "t");
            EXPECT_FALSE(d.fixit.empty());
        }
    }
    EXPECT_FALSE(rep.proven_safe());
}

TEST(Lint, ReduceAccumulatorIsNotUninit)
{
    // Reduce onto a fresh (zero-filled) allocation is the idiomatic
    // partial-sum pattern parallelize_reduction emits — not a finding.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[1] @ DRAM):
    acc: f32[1] @ DRAM
    for i in seq(0, n):
        acc[0] += x[i]
    y[0] = acc[0]
)");
    LintReport rep = lint::lint_proc(p);
    EXPECT_FALSE(rep.has_code("EXL101")) << rep.to_text();
}

TEST(Lint, EXL201ParallelLoopRace)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[4] @ DRAM):
    for i in par(0, n):
        x[0] = 1.0
)");
    LintReport rep = lint::lint_proc(p);
    ASSERT_TRUE(rep.has_code("EXL201")) << rep.to_text();
    EXPECT_TRUE(rep.has_errors());
    for (const auto& d : rep.diags) {
        if (d.code == "EXL201") {
            EXPECT_EQ(d.severity, Severity::Error);
            EXPECT_EQ(d.pass, "race");
            EXPECT_NE(d.message.find("'i'"), std::string::npos)
                << d.message;
            EXPECT_NE(d.message.find("x"), std::string::npos) << d.message;
        }
    }
}

TEST(Lint, EXL202NestedParallel)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, m: size, x: f32[n, m] @ DRAM):
    for i in par(0, n):
        for j in par(0, m):
            x[i, j] = 1.0
)");
    LintReport rep = lint::lint_proc(p);
    EXPECT_TRUE(rep.has_code("EXL202")) << rep.to_text();
    EXPECT_FALSE(rep.has_errors()) << rep.to_text();
}

TEST(Lint, EXL301EXL302DeadAllocs)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    dead: f32[8] @ DRAM
    wonly: f32[8] @ DRAM
    wonly[0] = 1.0
    x[0] = 2.0
)");
    LintReport rep = lint::lint_proc(p);
    EXPECT_TRUE(rep.has_code("EXL301")) << rep.to_text();
    EXPECT_TRUE(rep.has_code("EXL302")) << rep.to_text();
    // Hygiene findings are Info: they never threaten the safety claim.
    EXPECT_TRUE(rep.proven_safe()) << rep.to_text();
}

TEST(Lint, EXL303EXL304DegenerateLoops)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    for i in seq(0, 0):
        x[0] = 1.0
    for j in seq(0, 1):
        x[1] = 2.0
)");
    LintReport rep = lint::lint_proc(p);
    EXPECT_TRUE(rep.has_code("EXL303")) << rep.to_text();
    EXPECT_TRUE(rep.has_code("EXL304")) << rep.to_text();
    EXPECT_FALSE(rep.has_errors());
}

TEST(Lint, EXL305MaskedTailOnAvx2Only)
{
    const kernels::KernelDef& k = kernels::find_kernel("saxpy");
    ProcPtr avx2 = sched::optimize_level_1(
        k.proc, k.proc->find_loop(k.main_loop), k.prec, machine_avx2(), 4);
    LintReport r2 = lint::lint_proc(avx2);
    EXPECT_TRUE(r2.has_code("EXL305")) << r2.to_text();
    EXPECT_FALSE(r2.has_errors()) << r2.to_text();

    // AVX-512 has real mask registers: same schedule, no finding.
    ProcPtr avx512 = sched::optimize_level_1(
        k.proc, k.proc->find_loop(k.main_loop), k.prec, machine_avx512(),
        4);
    LintReport r5 = lint::lint_proc(avx512);
    EXPECT_FALSE(r5.has_code("EXL305")) << r5.to_text();
}

TEST(Lint, OptionsDisablePasses)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    x[7] = 1.0
)");
    lint::LintOptions opts;
    opts.bounds = false;
    LintReport rep = lint::lint_proc(p, opts);
    EXPECT_FALSE(rep.has_code("EXL002"));
    // With a sound pass disabled the strong claim must be withheld.
    EXPECT_FALSE(rep.proven_safe());
}

// -- The certifying race analysis ------------------------------------------

TEST(Lint, CertifyParallelLoops)
{
    ProcPtr safe = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in par(0, n):
        x[i] = 1.0
)");
    auto certs = lint::certify_parallel_loops(safe);
    ASSERT_EQ(certs.size(), 1u);
    EXPECT_EQ(certs[0].iter, "i");
    EXPECT_TRUE(certs[0].safe);
    EXPECT_TRUE(certs[0].conflicts.empty());
    EXPECT_FALSE(certs[0].loc.empty());

    ProcPtr racy = parse_proc(R"(
def f(n: size, x: f32[4] @ DRAM):
    for i in par(0, n):
        x[0] = 1.0
)");
    certs = lint::certify_parallel_loops(racy);
    ASSERT_EQ(certs.size(), 1u);
    EXPECT_FALSE(certs[0].safe);
    ASSERT_FALSE(certs[0].conflicts.empty());
    EXPECT_EQ(certs[0].conflicts[0].buf, "x");
    EXPECT_FALSE(certs[0].conflicts[0].detail.empty());
}

// -- Satellite: parallelize_loop names the conflicting pair ----------------

TEST(Lint, ParallelizeLoopMessageNamesConflict)
{
    ProcPtr bad = parse_proc(R"(
def r(n: size, x: f32[4] @ DRAM):
    for i in seq(0, n):
        x[0] += 1.0
)");
    std::string msg;
    try {
        parallelize_loop(bad, bad->find_loop("i"));
        FAIL() << "parallelize_loop accepted a racy loop";
    } catch (const SchedulingError& e) {
        msg = e.what();
    }
    EXPECT_NE(msg.find("parallelize_loop"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'x'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("x[0]"), std::string::npos) << msg;
}

// -- Soundness sweep: every scheduled kernel lints Error-free --------------

TEST(Lint, ScheduledLevel1KernelsHaveNoErrors)
{
    for (const auto& k : kernels::blas_level1()) {
        for (bool avx512 : {false, true}) {
            const Machine& m =
                avx512 ? machine_avx512() : machine_avx2();
            ProcPtr opt;
            ASSERT_NO_THROW(
                opt = sched::optimize_level_1(
                    k.proc, k.proc->find_loop(k.main_loop), k.prec, m, 4))
                << k.name;
            LintReport rep = lint::lint_proc(opt);
            EXPECT_EQ(rep.count(Severity::Error), 0u)
                << k.name << (avx512 ? " avx512\n" : " avx2\n")
                << rep.to_text();
        }
    }
}

TEST(Lint, ScheduledLevel2KernelsHaveNoErrors)
{
    for (const auto& k : kernels::blas_level2()) {
        for (bool avx512 : {false, true}) {
            const Machine& m =
                avx512 ? machine_avx512() : machine_avx2();
            ProcPtr opt;
            ASSERT_NO_THROW(
                opt = sched::optimize_level_2_general(
                    k.proc, k.proc->find_loop(k.main_loop), k.prec, m, 2,
                    2))
                << k.name;
            LintReport rep = lint::lint_proc(opt);
            EXPECT_EQ(rep.count(Severity::Error), 0u)
                << k.name << (avx512 ? " avx512\n" : " avx2\n")
                << rep.to_text();
        }
    }
}

TEST(Lint, ScheduledDemoKernelsHaveNoErrors)
{
    struct SK
    {
        const char* name;
        ProcPtr opt;
    };
    std::vector<SK> sks;
    sks.push_back({"sgemm", sched::schedule_sgemm(
                                sched::sgemm_with_asserts(kernels::sgemm(),
                                                          machine_avx2()),
                                machine_avx2())});
    sks.push_back({"blur", sched::schedule_blur_like_halide(
                               kernels::blur(), machine_avx2())});
    sks.push_back({"unsharp", sched::schedule_unsharp_like_halide(
                                  kernels::unsharp(), machine_avx2())});
    for (const auto& sk : sks) {
        LintReport rep = lint::lint_proc(sk.opt);
        EXPECT_EQ(rep.count(Severity::Error), 0u)
            << sk.name << "\n"
            << rep.to_text();
    }
}

// -- Soundness sweep over the fuzz corpus ----------------------------------
//
// Same kernels and seed derivation as test_verify's campaign; the full
// 212-seed budget runs via EXO2_LINT_FUZZ_SEEDS (scripts/check_lint.sh).
// fuzz_schedule itself carries the fourth-oracle cross-check: a
// proven-safe schedule that crashes the C oracle returns LintUnsound
// and fails the ASSERT below with a ddmin repro.

TEST(Lint, FuzzCorpusSoundness)
{
    int per = 4;
    if (const char* env = std::getenv("EXO2_LINT_FUZZ_SEEDS")) {
        int v = std::atoi(env);
        if (v > 0)
            per = v;
    }
    struct FK
    {
        std::string name;
        ProcPtr proc;
        SizeEnv env;
        int seeds;
    };
    std::vector<FK> fks = {
        {"saxpy", kernels::find_kernel("saxpy").proc, {{"n", 24}}, per},
        {"drot", kernels::find_kernel("drot").proc, {{"n", 17}}, per},
        {"sgemv_n",
         kernels::find_kernel("sgemv_n").proc,
         {{"M", 9}, {"N", 13}},
         per},
        {"strmv_lnn", kernels::find_kernel("strmv_lnn").proc, {{"N", 13}},
         per},
        {"sgemm", kernels::sgemm(), {{"M", 6}, {"N", 10}, {"K", 7}}, per},
        {"blur", kernels::blur(), {{"H", 32}, {"W", 256}},
         std::max(1, per * 3 / 10)},
    };
    int proven_safe = 0;
    for (const auto& fk : fks) {
        for (int s = 0; s < fk.seeds; s++) {
            uint64_t seed = 1000 * static_cast<uint64_t>(s) + 7;
            FuzzResult r = verify::fuzz_schedule(fk.proc, fk.env, seed);
            ASSERT_EQ(r.status, FuzzResult::Status::Ok)
                << verify::fuzz_repro_string(fk.name, seed, r);
            // Every applied step was a sound rewrite of a correct
            // kernel: a proven violation would be a lint false
            // positive.
            EXPECT_EQ(r.lint_errors, 0)
                << verify::fuzz_repro_string(fk.name, seed, r);
            if (r.lint_safe)
                proven_safe++;
        }
    }
    // Anti-vacuity: the sweep must actually exercise the strong claim.
    EXPECT_GT(proven_safe, 0);
}

// -- The tuner lint gate is winner-neutral ---------------------------------

TEST(Lint, TuneLintGateKeepsWinnerIdentical)
{
    // The five bench_autotune kernels at their bench tune sizes, on
    // the deterministic path (jit_topk=0): the gate must be
    // winner-neutral — identical winning scripts with lint on and off
    // — while actually checking every pool candidate.
    struct BK
    {
        std::string name;
        ProcPtr proc;
        SizeEnv sizes;
        int rounds;
    };
    std::vector<BK> bks = {
        {"saxpy", kernels::find_kernel("saxpy").proc, {{"n", 2048}}, 8},
        {"sdot", kernels::find_kernel("sdot").proc, {{"n", 2048}}, 8},
        {"sgemv_n",
         kernels::find_kernel("sgemv_n").proc,
         {{"M", 96}, {"N", 96}},
         8},
        {"sgemm", kernels::sgemm(), {{"M", 48}, {"N", 48}, {"K", 48}}, 6},
        {"blur", kernels::blur(), {{"H", 32}, {"W", 256}}, 8},
    };
    for (const auto& bk : bks) {
        tune::TuneOpts o;
        o.tune_sizes = bk.sizes;
        o.beam_width = 3;
        o.max_rounds = bk.rounds;
        o.jit_topk = 0;  // cost-model only: fully deterministic
        o.validate = false;
        o.use_cache = false;

        o.lint = true;
        tune::TuneResult with = tune::autotune(bk.proc, machine_avx2(), o);
        o.lint = false;
        tune::TuneResult without =
            tune::autotune(bk.proc, machine_avx2(), o);

        EXPECT_EQ(proc_digest(with.best), proc_digest(without.best))
            << bk.name;
        EXPECT_EQ(verify::script_to_string(with.script),
                  verify::script_to_string(without.script))
            << bk.name;
        EXPECT_GT(with.stats.lint_checked, 0) << bk.name;
        // Every pool candidate is a sound rewrite of a correct kernel:
        // a pruned one would be a lint false positive.
        EXPECT_EQ(with.stats.lint_pruned, 0) << bk.name;
        EXPECT_EQ(without.stats.lint_checked, 0) << bk.name;
    }
}

TEST(Lint, TuneLintGatePrunesUnsafeCandidates)
{
    // Non-vacuity: a proven out-of-bounds access (fencepost store past
    // the end) survives every sound rewrite, so the gate must prune
    // the entire pool before a single JIT compile is paid for.
    ProcPtr p = parse_proc(R"(
def saxpy_fencepost(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = y[i] + a * x[i]
    y[n] = 0.0
)");
    tune::TuneOpts o;
    o.tune_sizes = {{"n", 512}};
    o.beam_width = 3;
    o.max_rounds = 3;
    o.jit_topk = 0;
    o.validate = false;
    o.use_cache = false;
    tune::TuneResult r = tune::autotune(p, machine_avx2(), o);
    EXPECT_GT(r.stats.lint_checked, 0);
    EXPECT_EQ(r.stats.lint_pruned, r.stats.lint_checked);
}

}  // namespace
}  // namespace exo2
