/**
 * @file
 * Cost-simulator tests: cycle accounting, cache behaviour (locality is
 * rewarded), instruction costs, and the relative-performance
 * properties the benchmark figures rely on.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/kernels/blas.h"
#include "src/machine/cost_sim.h"
#include "src/sched/blas.h"

namespace exo2 {
namespace {

TEST(CostSim, CountsLoopWork)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)");
    CostConfig cfg;
    cfg.warm = false;
    CostResult r = simulate_cost_named(p, {{"n", 100}}, cfg);
    EXPECT_EQ(r.dram_accesses, 100);
    EXPECT_GE(r.cycles, 200.0);  // 100 iters * (loop + op)
    // Cycles scale linearly.
    CostResult r2 = simulate_cost_named(p, {{"n", 200}}, cfg);
    EXPECT_NEAR(r2.cycles / r.cycles, 2.0, 0.3);
}

TEST(CostSim, CacheRewardsLocality)
{
    // Strided column walk misses far more than a row walk.
    ProcPtr rowwise = parse_proc(R"(
def f(n: size, A: f32[n, n] @ DRAM, x: f32[1] @ DRAM):
    for i in seq(0, n):
        for j in seq(0, n):
            x[0] += A[i, j]
)");
    ProcPtr colwise = parse_proc(R"(
def f(n: size, A: f32[n, n] @ DRAM, x: f32[1] @ DRAM):
    for j in seq(0, n):
        for i in seq(0, n):
            x[0] += A[i, j]
)");
    CostConfig cfg;
    cfg.warm = false;
    CostResult row = simulate_cost_named(rowwise, {{"n", 512}}, cfg);
    CostResult col = simulate_cost_named(colwise, {{"n", 512}}, cfg);
    EXPECT_GT(col.l1_misses, row.l1_misses * 4);
    EXPECT_GT(col.cycles, row.cycles);
}

TEST(CostSim, WarmRunsFasterThanCold)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[1] @ DRAM):
    for i in seq(0, n):
        y[0] += x[i]
)");
    CostConfig cold;
    cold.warm = false;
    CostConfig warm;
    warm.warm = true;
    double c = simulate_cost_named(p, {{"n", 1024}}, cold).cycles;
    double w = simulate_cost_named(p, {{"n", 1024}}, warm).cycles;
    EXPECT_LT(w, c);
}

TEST(CostSim, VectorizationPaysOff)
{
    const auto& k = kernels::find_kernel("saxpy");
    ProcPtr opt = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 4);
    double naive = simulate_cost_named(k.proc, {{"n", 4096}}).cycles;
    double fast = simulate_cost_named(opt, {{"n", 4096}}).cycles;
    // AVX2 f32: 8 lanes; expect a healthy speedup (amortized by memory).
    EXPECT_GT(naive / fast, 3.0);
    EXPECT_LT(naive / fast, 32.0);
}

TEST(CostSim, MaskedArithmeticPricedByPredicationSupport)
{
    // AVX2 has no predicated ALU: masked arithmetic is emulated by
    // blending and must cost more than the unmasked form. AVX-512
    // executes masked arithmetic natively, so only the two-sided
    // (range) masks pay — one extra mask-register compare, which AVX2
    // pays on top of the blend.
    for (ScalarType t : {ScalarType::F32, ScalarType::F64}) {
        const VecInstrSet& a2 = machine_avx2().instrs(t);
        const VecInstrSet& a5 = machine_avx512().instrs(t);
        EXPECT_FALSE(machine_avx2().has_predicated_alu());
        EXPECT_TRUE(machine_avx512().has_predicated_alu());

        EXPECT_GT(a2.m_add->instr()->cycles, a2.add->instr()->cycles);
        EXPECT_GT(a2.m_fma->instr()->cycles, a2.fma->instr()->cycles);
        EXPECT_GT(a2.r_add->instr()->cycles, a2.m_add->instr()->cycles);

        EXPECT_EQ(a5.m_add->instr()->cycles, a5.add->instr()->cycles);
        EXPECT_EQ(a5.m_fma->instr()->cycles, a5.fma->instr()->cycles);
        EXPECT_GT(a5.r_add->instr()->cycles, a5.m_add->instr()->cycles);

        // The emulation penalty is what separates the two machines.
        EXPECT_GT(a2.m_mul->instr()->cycles, a5.m_mul->instr()->cycles);

        // Masked loads/stores are native on both (vmaskmov / k-masks):
        // no blend penalty, range forms still pay the extra compare.
        EXPECT_EQ(a2.load_pred->instr()->cycles,
                  a5.load_pred->instr()->cycles);
        EXPECT_GT(a2.r_load->instr()->cycles,
                  a2.load_pred->instr()->cycles);
    }
}

TEST(CostSim, MaskedTailCheaperOnPredicatedAluMachine)
{
    // End-to-end: a ragged saxpy tail runs masked instructions every
    // iteration; with identical cache behaviour the blend-emulating
    // machine must simulate slower per masked op. Compare the masked
    // instruction cost contribution directly via a tiny all-masked
    // schedule (n < vector width forces the masked path to do all the
    // work).
    const auto& k = kernels::find_kernel("saxpy");
    ProcPtr a2 = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 1);
    ProcPtr a5 = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx512(), 1);
    CostConfig cfg;
    cfg.warm = false;
    double c2 = simulate_cost_named(a2, {{"n", 5}}, cfg).cycles;
    double c5 = simulate_cost_named(a5, {{"n", 5}}, cfg).cycles;
    EXPECT_GT(c2, c5);
}

TEST(CostSim, DispatchOverheadOnlyMattersWhenSmall)
{
    const auto& k = kernels::find_kernel("scopy");
    ProcPtr opt = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 4);
    CostConfig with;
    with.dispatch_cycles = 30;
    CostConfig without;
    double small_ratio =
        simulate_cost_named(opt, {{"n", 4}}, with).cycles /
        simulate_cost_named(opt, {{"n", 4}}, without).cycles;
    double big_ratio =
        simulate_cost_named(opt, {{"n", 100000}}, with).cycles /
        simulate_cost_named(opt, {{"n", 100000}}, without).cycles;
    EXPECT_GT(small_ratio, 1.5);
    EXPECT_LT(big_ratio, 1.01);
}

}  // namespace
}  // namespace exo2
