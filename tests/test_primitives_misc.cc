/**
 * @file
 * Tests for rearrangement, scope, simplification, annotation, config,
 * and multi-procedure primitives.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/primitives/primitives.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using testing_support::expect_equiv;

TEST(ReorderStmts, SwapsIndependent)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    x[0] = 1.0
    y[0] = 2.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = reorder_stmts(p, p->find("x[_] = _"), p->find("y[_] = _"));
    EXPECT_EQ(p2->body_stmts()[0]->name(), "y");
    expect_equiv(p, p2, {});
}

TEST(ReorderStmts, RejectsDependent)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM):
    x[0] = 1.0
    x[1] = x[0]
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(
        reorder_stmts(p, p->find("x[0] = _"), p->find("x[1] = _")),
        SchedulingError);
}

TEST(CommuteExpr, SwapsOperands)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    x[0] = y[0] * y[1]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = commute_expr(p, p->find("x[_] = _").rhs());
    EXPECT_EQ(print_stmt(p2->body_stmts()[0]), "x[0] = y[1] * y[0]\n");
    expect_equiv(p, p2, {});
}

TEST(Specialize, BranchesOnConditions)
{
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = specialize(p, p->find_loop("i"),
                            {parse_expr_str("n < 4"),
                             parse_expr_str("n < 16")});
    const StmtPtr& outer = p2->body_stmts()[0];
    ASSERT_EQ(outer->kind(), StmtKind::If);
    EXPECT_EQ(print_expr(outer->cond()), "n < 4");
    ASSERT_EQ(outer->orelse().size(), 1u);
    EXPECT_EQ(outer->orelse()[0]->kind(), StmtKind::If);
    for (int64_t n : {2, 8, 20})
        expect_equiv(p, p2, {{"n", n}});
}

TEST(Fuse, MergesEqualLoops)
{
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for j in seq(0, n):
        y[j] = x[j] * 2.0
)";
    ProcPtr p = parse_proc(src);
    // y[j] reads x[j] written by iteration j of loop 1: fusing keeps
    // x[i] = 1.0 before y[i] = x[i]*2 within each iteration -> safe.
    ProcPtr p2 = fuse(p, p->find_loop("i"), p->find_loop("j"));
    EXPECT_EQ(p2->body_stmts().size(), 1u);
    EXPECT_EQ(p2->body_stmts()[0]->body().size(), 2u);
    expect_equiv(p, p2, {{"n", 6}});
}

TEST(Fuse, RejectsBackwardDependence)
{
    const char* src = R"(
def r(n: size, x: f32[n + 1] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i + 1] = 1.0
    for j in seq(0, n):
        y[j] = x[j]
)";
    // After fusion, y[j] = x[j] would read x[j] before iteration j-1
    // ... i.e. iteration j reads x[j] which loop 1 wrote at i=j-1;
    // fusing flips that order for i > j ... specifically i=j-1 < j is
    // fine, but x[j] is written by i = j-1 which still precedes; the
    // conflicting pair is a(i) vs b(j) with j < i: x[i+1] vs x[j] with
    // j = i+1 > i is not < i. Construct a genuinely backward case:
    const char* bad = R"(
def r(n: size, x: f32[n + 1] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for j in seq(0, n):
        y[j] = x[j + 1]
)";
    (void)src;
    ProcPtr p = parse_proc(bad);
    EXPECT_THROW(fuse(p, p->find_loop("i"), p->find_loop("j")),
                 SchedulingError);
}

TEST(Simplify, DivModElimination)
{
    const char* src = R"(
def r(N: size, x: f32[N] @ DRAM):
    assert N % 8 == 0
    for io in seq(0, N / 8):
        for ii in seq(0, 8):
            x[(8 * io + ii) / 8 * 8 + (8 * io + ii) % 8] = 1.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = simplify(p);
    std::string printed = print_stmt(
        p2->body_stmts()[0]->body()[0]->body()[0]);
    EXPECT_EQ(printed, "x[ii + 8 * io] = 1.0\n");
    expect_equiv(p, p2, {{"N", 16}});
}

TEST(Simplify, ConstantFolding)
{
    ProcPtr p = parse_proc(R"(
def r(x: f32[8] @ DRAM):
    x[2 * 3 + 1] = 1.0 + 2.0
)");
    ProcPtr p2 = simplify(p);
    EXPECT_EQ(print_stmt(p2->body_stmts()[0]), "x[7] = 3.0\n");
}

TEST(Dce, RemovesProvablyDeadBranches)
{
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM):
    assert n % 8 == 0
    for io in seq(0, n / 8):
        for ii in seq(0, 8):
            if 8 * io + ii < n:
                x[8 * io + ii] = 1.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = eliminate_dead_code(p);
    EXPECT_EQ(print_proc(p2).find("if"), std::string::npos);
    expect_equiv(p, p2, {{"n", 16}});
}

TEST(Dce, RemovesZeroTripLoops)
{
    const char* src = R"(
def r(n: size, x: f32[n + 8] @ DRAM):
    assert n % 8 == 0
    for t in seq(0, n % 8):
        x[t] = 1.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = eliminate_dead_code(p);
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::Pass);
}

TEST(RewriteExpr, ProvedRewrite)
{
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM):
    assert n % 8 == 0
    for i in seq(0, n / 8 * 8):
        x[i] = 1.0
)";
    ProcPtr p = parse_proc(src);
    Cursor hi = p->find_loop("i").hi();
    ProcPtr p2 = rewrite_expr(p, hi, var("n"));
    EXPECT_EQ(print_expr(p2->body_stmts()[0]->hi()), "n");
    expect_equiv(p, p2, {{"n", 16}});
    // Unprovable rewrite must throw.
    EXPECT_THROW(rewrite_expr(p, p->find_loop("i").hi(),
                              var("n") + idx_const(1)),
                 SchedulingError);
}

TEST(MergeWrites, AssignThenReduce)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    x[0] = y[0]
    x[0] += y[1]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = merge_writes(p, p->find("x[_] = _"),
                              p->find("x[_] += _"));
    EXPECT_EQ(p2->body_stmts().size(), 1u);
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::Assign);
    expect_equiv(p, p2, {});
}

TEST(MergeWrites, ReduceThenReduce)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    x[0] += y[0]
    x[0] += y[1]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = merge_writes(p, p->find("x[_] += _"),
                              p->find("x[_] += _ #1"));
    EXPECT_EQ(p2->body_stmts().size(), 1u);
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::Reduce);
    expect_equiv(p, p2, {});
}

TEST(InlineAssign, SubstitutesScalar)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM, y: f32[4] @ DRAM):
    t: f32 @ DRAM
    t = y[0] * 2.0
    x[0] = t
    x[1] = t + 1.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = inline_assign(p, p->find("t = _"));
    ProcPtr p3 = delete_buffer(p2, p2->find_alloc("t"));
    EXPECT_EQ(print_proc(p3).find("t ="), std::string::npos);
    expect_equiv(p, p3, {});
}

TEST(SetMemory, VectorWidthCheck)
{
    const char* src = R"(
def r(x: f32[8] @ DRAM):
    v: f32[8] @ DRAM
    for i in seq(0, 8):
        v[i] = x[i]
    for i in seq(0, 8):
        x[i] = v[i]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = set_memory(p, "v", mem_avx2());
    EXPECT_EQ(p2->find_alloc("v").stmt()->mem()->name(), "AVX2");
    // f32[8] is 32 bytes: exactly one AVX2 register, but half an AVX512
    // register: rejected.
    EXPECT_THROW(set_memory(p, "v", mem_avx512()), SchedulingError);
}

TEST(ParallelizeLoop, AcceptsAndRejects)
{
    const char* ok_src = R"(
def r(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)";
    ProcPtr ok = parse_proc(ok_src);
    ProcPtr ok2 = parallelize_loop(ok, ok->find_loop("i"));
    EXPECT_EQ(ok2->body_stmts()[0]->loop_mode(), LoopMode::Par);

    const char* bad_src = R"(
def r(n: size, x: f32[4] @ DRAM):
    for i in seq(0, n):
        x[0] += 1.0
)";
    ProcPtr bad = parse_proc(bad_src);
    EXPECT_THROW(parallelize_loop(bad, bad->find_loop("i")),
                 SchedulingError);
}

TEST(Config, WriteDeleteRoundTrip)
{
    const char* src = R"(
def r(n: size, x: f32[4] @ DRAM):
    x[0] = 1.0
    x[1] = 2.0
)";
    ProcPtr p = parse_proc(src);
    Cursor gap = p->find("x[0] = _").after();
    ProcPtr p2 = write_config(p, gap, "cfg", "stride", var("n"));
    EXPECT_EQ(p2->body_stmts()[1]->kind(), StmtKind::WriteConfig);
    ProcPtr p3 = delete_config(p2, p2->find("cfg.stride = _"));
    EXPECT_TRUE(block_equal(p3->body_stmts(), p->body_stmts()));
}

TEST(InlineCall, SplicesBody)
{
    ProcPtr callee = parse_proc(R"(
def scale2(n: size, dst: [f32][n] @ DRAM, src: [f32][n] @ DRAM):
    for i in seq(0, n):
        dst[i] = src[i] * 2.0
)");
    ProcPtr p = parse_proc(R"(
def caller(x: f32[8] @ DRAM, y: f32[8] @ DRAM):
    scale2(4, y[0:4], x[2:6])
)",
                           {callee});
    ProcPtr p2 = inline_call(p, p->find("scale2(_)"));
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::For);
    std::string printed = print_proc(p2);
    EXPECT_NE(printed.find("y[i] = x[i + 2] * 2.0"), std::string::npos);
    expect_equiv(p, p2, {});
}

TEST(Replace, UnifiesLoopWithInstr)
{
    // A vector-load style instruction.
    ProcPtr ld = Proc::make(
        "vld8",
        {buffer_arg("dst", ScalarType::F32, {idx_const(8)}, mem_avx2(),
                    true),
         buffer_arg("src", ScalarType::F32, {idx_const(8)}, nullptr,
                    true)},
        {},
        parse_proc(R"(
def body(dst: [f32][8] @ AVX2, src: [f32][8] @ DRAM):
    for i in seq(0, 8):
        dst[i] = src[i]
)")
            ->body_stmts(),
        InstrInfo{"vld8({dst}, {src})", 1.0, "load"});

    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM):
    assert n % 8 == 0
    v: f32[8] @ AVX2
    for io in seq(0, n / 8):
        for i in seq(0, 8):
            v[i] = x[8 * io + i]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = replace(p, p->find_loop("i"), ld);
    std::string printed = print_proc(p2);
    EXPECT_NE(printed.find("vld8(v[0:8], x[8 * io:8 * io + 8])"),
              std::string::npos)
        << printed;
    expect_equiv(p, p2, {{"n", 16}});
}

TEST(Replace, RejectsShapeMismatch)
{
    ProcPtr ld = Proc::make(
        "vld8",
        {buffer_arg("dst", ScalarType::F32, {idx_const(8)}, mem_avx2(),
                    true),
         buffer_arg("src", ScalarType::F32, {idx_const(8)}, nullptr,
                    true)},
        {},
        parse_proc(R"(
def body(dst: [f32][8] @ AVX2, src: [f32][8] @ DRAM):
    for i in seq(0, 8):
        dst[i] = src[i]
)")
            ->body_stmts(),
        InstrInfo{"vld8({dst}, {src})", 1.0, "load"});
    const char* src = R"(
def r(x: f32[8] @ DRAM):
    v: f32[8] @ AVX2
    for i in seq(0, 8):
        v[i] = x[i] * 2.0
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(replace(p, p->find_loop("i"), ld), SchedulingError);
}

TEST(CallEqv, SwapsEquivalentCallee)
{
    ProcPtr callee = parse_proc(R"(
def work(n: size, dst: [f32][n] @ DRAM):
    for i in seq(0, n):
        dst[i] = 1.0
)");
    ProcPtr faster = divide_loop(callee, "i", 2, {"io", "ii"},
                                 TailStrategy::Cut)
                         ->renamed("work_fast");
    ProcPtr p = parse_proc(R"(
def caller(y: f32[8] @ DRAM):
    work(8, y[0:8])
)",
                           {callee});
    ProcPtr p2 = call_eqv(p, p->find("work(_)"), faster);
    EXPECT_EQ(p2->body_stmts()[0]->callee()->name(), "work_fast");
    expect_equiv(p, p2, {});
}

TEST(ExtractSubproc, PullsOutBlock)
{
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i] * 2.0
)";
    ProcPtr p = parse_proc(src);
    auto [p2, sub] = extract_subproc(p, p->find_loop("i"), "inner");
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::Call);
    EXPECT_EQ(sub->name(), "inner");
    EXPECT_GE(sub->args().size(), 3u);
    expect_equiv(p, p2, {{"n", 6}});
}

}  // namespace
}  // namespace exo2
