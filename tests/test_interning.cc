/**
 * @file
 * Tests for the structural-identity subsystem: expression hash-consing
 * invariants, statement structural hashes, no-op rebuild identity,
 * memoized-vs-uncached analysis cross-checks on randomized schedules,
 * and cursor forwarding across interned edits.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/analysis/context.h"
#include "src/analysis/effects.h"
#include "src/analysis/memo.h"
#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/interner.h"
#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/primitives/primitives.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

// -- Interning invariants --------------------------------------------------

TEST(Interning, StructuralEqualityIsPointerEquality)
{
    ExprPtr a = (var("i") * idx_const(8)) + var("j");
    ExprPtr b = (var("i") * idx_const(8)) + var("j");
    EXPECT_EQ(a, b);  // same object, not merely equal
    EXPECT_EQ(a->structural_hash(), b->structural_hash());
    EXPECT_EQ(a->intern_id(), b->intern_id());
    EXPECT_TRUE(expr_equal(a, b));

    ExprPtr c = (var("i") * idx_const(8)) + var("k");
    EXPECT_NE(a, c);
    EXPECT_FALSE(expr_equal(a, c));

    // Types distinguish nodes: an f32 literal is not an index literal.
    EXPECT_NE(idx_const(2), num_const(2.0, ScalarType::F32));
    // But equal values of equal type unify however they are built.
    EXPECT_EQ(Expr::make_const(2.0, ScalarType::Index), idx_const(2));
}

TEST(Interning, ParsedAndBuiltExpressionsUnify)
{
    ExprPtr parsed = parse_expr_str("8 * io + ii");
    ExprPtr rebuilt = parse_expr_str("8 * io + ii");
    EXPECT_EQ(parsed, rebuilt);
}

TEST(Interning, NoOpRebuildsPreserveIdentity)
{
    ExprPtr e = (var("i") + var("j")) * idx_const(4);
    EXPECT_EQ(e->with_children(e->children()), e);

    // Substituting a variable that does not occur is the identity.
    EXPECT_EQ(expr_subst(e, "zz", idx_const(0)), e);
    // Substituting i by i is also (pointer-)identity.
    EXPECT_EQ(expr_subst(e, "i", var("i")), e);

    // Round-trip substitution re-interns to the original node.
    ExprPtr once = expr_subst(e, "i", var("t"));
    EXPECT_NE(once, e);
    EXPECT_EQ(expr_subst(once, "t", var("i")), e);
}

TEST(Interning, StmtNoOpSubstPreservesIdentity)
{
    StmtPtr s = Stmt::make_assign(
        "x", {var("i")}, read("y", {var("i")}, ScalarType::F32),
        ScalarType::F32);
    EXPECT_EQ(stmt_subst(s, "zz", idx_const(0)), s);
    StmtPtr loop = Stmt::make_for("i", idx_const(0), var("n"), {s});
    EXPECT_EQ(stmt_subst(loop, "zz", idx_const(0)), loop);
}

TEST(Interning, StmtHashMirrorsEquality)
{
    const char* src = R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 2.0
)";
    ProcPtr p1 = parse_proc(src);
    ProcPtr p2 = parse_proc(src);
    ASSERT_EQ(p1->body_stmts().size(), p2->body_stmts().size());
    const StmtPtr& a = p1->body_stmts()[0];
    const StmtPtr& b = p2->body_stmts()[0];
    EXPECT_NE(a, b);  // stmts are not interned...
    EXPECT_TRUE(stmt_equal(a, b));  // ...but equality holds
    EXPECT_EQ(a->structural_hash(), b->structural_hash());
    EXPECT_EQ(block_hash(p1->body_stmts()), block_hash(p2->body_stmts()));

    ProcPtr p3 = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 3.0
)");
    EXPECT_NE(p1->body_stmts()[0]->structural_hash(),
              p3->body_stmts()[0]->structural_hash());
}

// -- Memoized vs uncached cross-checks -------------------------------------

/** Collect every For statement cursor-addressable by iterator name. */
void
collect_loop_iters(const std::vector<StmtPtr>& b,
                   std::vector<std::string>* out)
{
    for (const auto& s : b) {
        if (s->kind() == StmtKind::For) {
            out->push_back(s->iter());
        }
        collect_loop_iters(s->body(), out);
        collect_loop_iters(s->orelse(), out);
    }
}

/** Compare two access summaries modulo binder alpha-renaming. */
void
expect_accesses_equiv(const std::vector<Access>& a,
                      const std::vector<Access>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].buf, b[i].buf);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].whole_buffer, b[i].whole_buffer);
        EXPECT_EQ(a[i].idx.size(), b[i].idx.size());
        EXPECT_EQ(a[i].binders.size(), b[i].binders.size());
        EXPECT_EQ(a[i].guards.size(), b[i].guards.size());
    }
}

/** Every analysis decision must be identical with and without memo. */
void
cross_check_proc(const ProcPtr& p)
{
    std::vector<std::string> iters;
    collect_loop_iters(p->body_stmts(), &iters);

    for (const auto& it : iters) {
        Cursor lc = p->find_loop(it);
        StmtPtr loop = lc.stmt();
        Context ctx = Context::at(p, lc.loc().path);

        set_analysis_memo_enabled(true);
        bool commute_m = loop_iterations_commute(ctx, loop);
        bool par_m = loop_parallelizable(ctx, loop);
        bool idem_m = block_idempotent(loop->body());
        bool lt_m = ctx.prove_lt(loop->lo(), loop->hi());
        auto accs_m = collect_accesses(loop);

        set_analysis_memo_enabled(false);
        bool commute_u = loop_iterations_commute(ctx, loop);
        bool par_u = loop_parallelizable(ctx, loop);
        bool idem_u = block_idempotent(loop->body());
        bool lt_u = ctx.prove_lt(loop->lo(), loop->hi());
        auto accs_u = collect_accesses(loop);
        set_analysis_memo_enabled(true);

        EXPECT_EQ(commute_m, commute_u) << "loop " << it;
        EXPECT_EQ(par_m, par_u) << "loop " << it;
        EXPECT_EQ(idem_m, idem_u) << "loop " << it;
        EXPECT_EQ(lt_m, lt_u) << "loop " << it;
        expect_accesses_equiv(accs_m, accs_u);
    }

    // Adjacent top-level statements: commutation decisions.
    const auto& body = p->body_stmts();
    Context root = Context::at(p, {});
    for (size_t i = 0; i + 1 < body.size(); i++) {
        set_analysis_memo_enabled(true);
        bool m = stmts_commute(root, body[i], body[i + 1]);
        set_analysis_memo_enabled(false);
        bool u = stmts_commute(root, body[i], body[i + 1]);
        set_analysis_memo_enabled(true);
        EXPECT_EQ(m, u) << "stmt pair " << i;
    }
}

/** to_affine memo entries must be bit-identical to recomputation. */
void
cross_check_affine(const ExprPtr& e)
{
    set_analysis_memo_enabled(true);
    Affine m = to_affine(e);
    set_analysis_memo_enabled(false);
    Affine u = to_affine(e);
    set_analysis_memo_enabled(true);
    EXPECT_EQ(m.constant, u.constant);
    ASSERT_EQ(m.terms.size(), u.terms.size());
    auto im = m.terms.begin();
    auto iu = u.terms.begin();
    for (; im != m.terms.end(); ++im, ++iu) {
        EXPECT_EQ(im->first, iu->first);
        EXPECT_EQ(im->second.coeff, iu->second.coeff);
        EXPECT_EQ(im->second.atom, iu->second.atom);
    }
    EXPECT_EQ(affine_hash(m), affine_hash(u));
}

TEST(MemoCrossCheck, RandomizedSchedules)
{
    std::mt19937 rng(20260728);
    const char* kBase = R"(
def f(n: size, m: size, a: f32[n, m] @ DRAM, x: f32[m] @ DRAM,
      y: f32[n] @ DRAM):
    assert n >= 16
    assert m >= 16
    for i in seq(0, n):
        for j in seq(0, m):
            y[i] += a[i, j] * x[j]
    for k in seq(0, n):
        y[k] = y[k] * 2.0
)";

    for (int trial = 0; trial < 6; trial++) {
        ProcPtr p = parse_proc(kBase);
        int fresh = 0;
        for (int step = 0; step < 5; step++) {
            std::vector<std::string> iters;
            collect_loop_iters(p->body_stmts(), &iters);
            ASSERT_FALSE(iters.empty());
            const std::string& target =
                iters[rng() % iters.size()];
            int which = static_cast<int>(rng() % 4);
            int factor = 2 << (rng() % 3);  // 2, 4, or 8
            TailStrategy tails[] = {TailStrategy::Guard, TailStrategy::Cut,
                                    TailStrategy::CutAndGuard};
            try {
                if (which == 0 || which == 1) {
                    std::string o = target + "o" + std::to_string(fresh);
                    std::string in = target + "i" + std::to_string(fresh);
                    fresh++;
                    p = divide_loop(p, target, factor, {o, in},
                                    tails[rng() % 3]);
                } else if (which == 2) {
                    p = reorder_loops(p, target);
                } else {
                    p = unroll_loop(p, target);
                }
            } catch (const SchedulingError&) {
                continue;  // rejected rewrite: fine, try another
            }
            cross_check_proc(p);
        }
        // Affine cross-checks on the final proc's loop bounds.
        std::vector<std::string> iters;
        collect_loop_iters(p->body_stmts(), &iters);
        for (const auto& it : iters) {
            StmtPtr loop = p->find_loop(it).stmt();
            cross_check_affine(loop->lo());
            cross_check_affine(loop->hi());
        }
    }
}

TEST(MemoCrossCheck, LinearQueriesAgree)
{
    // A context with div/mod axioms, queried with and without memo.
    LinearSystem sys;
    sys.add_pred(parse_expr_str("n % 8 == 0"));
    sys.add_pred(parse_expr_str("n >= 8"));
    sys.add_pred(parse_expr_str("i >= 0"));
    sys.add_pred(parse_expr_str("i < n"));
    const char* queries[] = {
        "i < n", "i <= n - 1", "n >= 4", "n / 8 * 8 == n",
        "i / 8 < n / 8 + 1", "n % 8 == 0", "i < 0", "n < 8",
    };
    for (const char* q : queries) {
        ExprPtr e = parse_expr_str(q);
        set_analysis_memo_enabled(true);
        bool m1 = sys.implies_pred(e);
        bool m2 = sys.implies_pred(e);  // second call: served from cache
        set_analysis_memo_enabled(false);
        bool u = sys.implies_pred(e);
        set_analysis_memo_enabled(true);
        EXPECT_EQ(m1, m2) << q;
        EXPECT_EQ(m1, u) << q;
    }
    for (int64_t k : {2, 4, 8, 16}) {
        set_analysis_memo_enabled(true);
        bool m = sys.implies_divisible(parse_expr_str("n"), k);
        set_analysis_memo_enabled(false);
        bool u = sys.implies_divisible(parse_expr_str("n"), k);
        set_analysis_memo_enabled(true);
        EXPECT_EQ(m, u) << "divisible by " << k;
    }
}

// -- Cursor forwarding across interned edits -------------------------------

TEST(InternedForwarding, CursorsResolveAcrossSchedule)
{
    const auto& k = kernels::find_kernel("sgemv_n");
    ProcPtr p = k.proc;
    Cursor red = p->find("y[_] += _");
    StmtPtr before = red.stmt();
    ASSERT_EQ(before->kind(), StmtKind::Reduce);

    p = divide_loop(p, "i", 8, {"io", "ii"}, TailStrategy::Guard);
    p = divide_loop(p, "j", 8, {"jo", "ji"}, TailStrategy::Guard);
    p = lift_scope(p, "jo");

    Cursor now = p->forward(red);
    ASSERT_TRUE(now.is_valid());
    StmtPtr after = now.stmt();
    ASSERT_EQ(after->kind(), StmtKind::Reduce);
    EXPECT_EQ(after->name(), "y");
    // The forwarded statement is the pattern-findable reduce.
    EXPECT_EQ(print_stmt(after), print_stmt(p->find("y[_] += _").stmt()));
}

TEST(InternedForwarding, NoOpEditKeepsProcAndCursors)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)");
    Cursor c = p->find("x[_] = _");
    // Replacing the statement with itself is recognized as a no-op: the
    // proc is returned unchanged and the cursor still resolves.
    ProcPtr p2 = apply_replace_stmt_same_shape(p, c.loc().path, c.stmt(),
                                               "noop");
    EXPECT_EQ(p2, p);
    EXPECT_TRUE(stmt_equal(p2->forward(c).stmt(), c.stmt()));
}

TEST(InternerStatsReporting, HitsAccumulate)
{
    InternerStats before = expr_interner_stats();
    ExprPtr a = var("stat_probe_x") + idx_const(1);
    ExprPtr b = var("stat_probe_x") + idx_const(1);
    (void)a;
    (void)b;
    InternerStats after = expr_interner_stats();
    EXPECT_GT(after.hits, before.hits);  // second build hit the table
    EXPECT_GE(after.live_nodes, before.live_nodes);
}

}  // namespace
}  // namespace exo2
