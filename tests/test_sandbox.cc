/**
 * @file
 * Fault-isolation subsystem tests (DESIGN.md §7).
 *
 * Four layers:
 *  1. The hardened subprocess runner: full wait-status decoding (exit
 *     codes, termination signals, wall-clock timeouts) and captured
 *     output.
 *  2. The deterministic fault injector: spec parsing round-trips and
 *     every injected fault class surfacing as a structured
 *     RuntimeFault — compiler failures and hangs, dlopen failures,
 *     crashing (SIGSEGV/SIGFPE) and hanging kernels — with the driver
 *     process alive at the end, plus the ISA degradation chain.
 *  3. The sandboxed execution path itself: outputs marshalled back
 *     through shared memory on clean runs, faults isolated on dirty
 *     ones.
 *  4. The consumers: tri-oracle, fuzzer, and autotuner each complete
 *     under injection with faults recorded, never by dying.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/frontend/parser.h"
#include "src/kernels/blas.h"
#include "src/machine/machine.h"
#include "src/sched/blas.h"
#include "src/tune/tune.h"
#include "src/verify/verify.h"

namespace exo2 {
namespace {

using verify::CompiledProc;
using verify::FaultSpec;
using verify::fuzz_repro_string;
using verify::fuzz_schedule;
using verify::FuzzResult;
using verify::NativeIsa;
using verify::run_command;
using verify::SandboxLimits;
using verify::SandboxOutcome;
using verify::SpawnResult;
using verify::tri_oracle_check;

/** y[i] = x[i] + x[i]: one output buffer, easy to check bit-exactly. */
ProcPtr
double_proc()
{
    return parse_proc(R"(
def dbl(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i] + x[i]
)");
}

/** Every test leaves the process with injection off, a re-armed (and
 *  absent) environment spec, and clean counters, whatever it did. */
class SandboxTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        unsetenv("EXO2_FAULTS");
        unsetenv("EXO2_CJIT_TIMEOUT");
        unsetenv("EXO2_SANDBOX_WALL");
        verify::clear_fault_spec();
        verify::clear_isa_downgrades();
        verify::reset_fault_injection_counts();
    }
};

// ---- 1. Hardened subprocess runner --------------------------------------

TEST_F(SandboxTest, RunCommandDecodesExitCodeAndCapturesOutput)
{
    std::string out_path = ::testing::TempDir() + "exo2_spawn_exit.txt";
    SpawnResult r = run_command(
        {"sh", "-c", "echo boom-on-stderr >&2; exit 7"}, out_path, 10);
    EXPECT_TRUE(r.started);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exit_code, 7);
    EXPECT_FALSE(r.timed_out);
    EXPECT_FALSE(r.ok());
    std::ifstream in(out_path);
    std::string captured((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(captured.find("boom-on-stderr"), std::string::npos);
    std::remove(out_path.c_str());
}

TEST_F(SandboxTest, RunCommandDecodesTerminationSignal)
{
    std::string out_path = ::testing::TempDir() + "exo2_spawn_sig.txt";
    SpawnResult r =
        run_command({"sh", "-c", "kill -SEGV $$"}, out_path, 10);
    EXPECT_TRUE(r.started);
    EXPECT_FALSE(r.exited);
    EXPECT_EQ(r.term_signal, SIGSEGV);
    EXPECT_FALSE(r.ok());
    std::remove(out_path.c_str());
}

TEST_F(SandboxTest, RunCommandEnforcesTimeout)
{
    std::string out_path = ::testing::TempDir() + "exo2_spawn_hang.txt";
    SpawnResult r = run_command({"sleep", "30"}, out_path, 0.3);
    EXPECT_TRUE(r.started);
    EXPECT_TRUE(r.timed_out);
    EXPECT_FALSE(r.ok());
    EXPECT_LT(r.seconds, 10.0);  // killed, not waited out
    std::remove(out_path.c_str());
}

TEST_F(SandboxTest, RunCommandReportsUnspawnableBinary)
{
    std::string out_path = ::testing::TempDir() + "exo2_spawn_none.txt";
    SpawnResult r = run_command(
        {"exo2-definitely-not-a-real-binary"}, out_path, 10);
    // POSIX allows either a spawn-level ENOENT or a 127 exit from the
    // intermediate shell-style resolution; both must read as failure.
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(!r.started || (r.exited && r.exit_code == 127))
        << r.error;
    std::remove(out_path.c_str());
}

// ---- 2. Fault-injection spec --------------------------------------------

TEST_F(SandboxTest, FaultSpecParsesAndRoundTrips)
{
    FaultSpec s = verify::parse_fault_spec(
        "seed=42,compile_fail=0.3,sigsegv=0.2,hang=0.1,slow_seconds=5");
    EXPECT_EQ(s.seed, 42u);
    EXPECT_DOUBLE_EQ(s.compile_fail, 0.3);
    EXPECT_DOUBLE_EQ(s.sigsegv, 0.2);
    EXPECT_DOUBLE_EQ(s.hang, 0.1);
    EXPECT_DOUBLE_EQ(s.slow_seconds, 5.0);
    EXPECT_DOUBLE_EQ(s.compile_slow, 0.0);
    EXPECT_TRUE(s.any());

    FaultSpec back =
        verify::parse_fault_spec(verify::fault_spec_to_string(s));
    EXPECT_EQ(back.seed, s.seed);
    EXPECT_DOUBLE_EQ(back.compile_fail, s.compile_fail);
    EXPECT_DOUBLE_EQ(back.sigsegv, s.sigsegv);
    EXPECT_DOUBLE_EQ(back.hang, s.hang);
    EXPECT_DOUBLE_EQ(back.slow_seconds, s.slow_seconds);
}

TEST_F(SandboxTest, FaultSpecRejectsMalformedInput)
{
    EXPECT_THROW(verify::parse_fault_spec("bogus_key=1"),
                 verify::VerifyError);
    EXPECT_THROW(verify::parse_fault_spec("sigsegv=1.5"),
                 verify::VerifyError);
    EXPECT_THROW(verify::parse_fault_spec("sigsegv=-0.1"),
                 verify::VerifyError);
    EXPECT_THROW(verify::parse_fault_spec("sigsegv"),
                 verify::VerifyError);
}

TEST_F(SandboxTest, EnvironmentSpecIsPickedUp)
{
    setenv("EXO2_FAULTS", "seed=9,compile_fail=0.5", 1);
    verify::clear_fault_spec();  // re-arm the lazily read env spec
    FaultSpec s = verify::current_fault_spec();
    EXPECT_EQ(s.seed, 9u);
    EXPECT_DOUBLE_EQ(s.compile_fail, 0.5);
}

// ---- 3. Each injected fault class, end to end ----------------------------

TEST_F(SandboxTest, InjectedCompileFailureThrowsStructuredFault)
{
    FaultSpec s;
    s.compile_fail = 1.0;
    verify::set_fault_spec(s);
    try {
        CompiledProc cp(double_proc());
        FAIL() << "expected FaultError";
    } catch (const verify::FaultError& e) {
        EXPECT_EQ(e.fault().kind, FaultKind::CompileError);
        EXPECT_EQ(e.fault().phase, FaultPhase::Compile);
        // The compiler's captured stderr is in the message.
        EXPECT_NE(std::string(e.what()).find("injected compiler failure"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_GE(verify::fault_injection_counts().compile_fail, 1u);
}

TEST_F(SandboxTest, InjectedSlowCompileHitsTimeout)
{
    setenv("EXO2_CJIT_TIMEOUT", "0.3", 1);
    FaultSpec s;
    s.compile_slow = 1.0;
    s.slow_seconds = 30.0;  // far past the 0.3 s timeout
    verify::set_fault_spec(s);
    try {
        CompiledProc cp(double_proc());
        FAIL() << "expected FaultError";
    } catch (const verify::FaultError& e) {
        EXPECT_EQ(e.fault().kind, FaultKind::CompileTimeout);
        EXPECT_EQ(e.fault().phase, FaultPhase::Compile);
        EXPECT_LT(e.fault().elapsed_seconds, 10.0);  // killed early
    }
    EXPECT_GE(verify::fault_injection_counts().compile_slow, 1u);
}

TEST_F(SandboxTest, InjectedDlopenFailureThrowsLoadFault)
{
    FaultSpec s;
    s.dlopen_fail = 1.0;
    verify::set_fault_spec(s);
    try {
        CompiledProc cp(double_proc());
        FAIL() << "expected FaultError";
    } catch (const verify::FaultError& e) {
        EXPECT_EQ(e.fault().kind, FaultKind::LoadError);
        EXPECT_EQ(e.fault().phase, FaultPhase::Load);
    }
    EXPECT_GE(verify::fault_injection_counts().dlopen_fail, 1u);
}

TEST_F(SandboxTest, SandboxIsolatesSigsegvThenCleanRunMarshalsBack)
{
    ProcPtr p = double_proc();

    // Build with a planted null-pointer write at the entry point.
    FaultSpec s;
    s.sigsegv = 1.0;
    verify::set_fault_spec(s);
    CompiledProc crashing(p);
    verify::clear_fault_spec();

    Buffer x(ScalarType::F32, {4}), y(ScalarType::F32, {4});
    for (int i = 0; i < 4; i++)
        x.set(i, 1.0 + i);
    std::vector<RunArg> args = {RunArg::make_size(4),
                                RunArg::make_buffer(&x),
                                RunArg::make_buffer(&y)};

    SandboxOutcome so = crashing.run_sandboxed(args);
    EXPECT_FALSE(so.ok);
    EXPECT_EQ(so.fault.kind, FaultKind::Crash);
    EXPECT_EQ(so.fault.phase, FaultPhase::Execute);
    EXPECT_EQ(so.fault.signal_number, SIGSEGV);
    // The crash in the child left the caller's buffers untouched.
    EXPECT_EQ(y.at(0), 0.0);

    // Same proc rebuilt without injection: the sandboxed run succeeds
    // and outputs written by the child come back through shared memory.
    CompiledProc clean(p);
    SandboxOutcome ok = clean.run_sandboxed(args);
    ASSERT_TRUE(ok.ok) << ok.fault.to_string();
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(y.at(i), 2.0 * (1.0 + i));
    EXPECT_GE(verify::fault_injection_counts().sigsegv, 1u);
}

TEST_F(SandboxTest, SandboxIsolatesSigfpe)
{
    FaultSpec s;
    s.sigfpe = 1.0;
    verify::set_fault_spec(s);
    CompiledProc crashing(double_proc());
    verify::clear_fault_spec();

    Buffer x(ScalarType::F32, {4}), y(ScalarType::F32, {4});
    std::vector<RunArg> args = {RunArg::make_size(4),
                                RunArg::make_buffer(&x),
                                RunArg::make_buffer(&y)};
    SandboxOutcome so = crashing.run_sandboxed(args);
    EXPECT_FALSE(so.ok);
    EXPECT_EQ(so.fault.kind, FaultKind::Crash);
    EXPECT_EQ(so.fault.signal_number, SIGFPE);
}

TEST_F(SandboxTest, SandboxKillsHangingKernel)
{
    FaultSpec s;
    s.hang = 1.0;
    verify::set_fault_spec(s);
    CompiledProc spinning(double_proc());
    verify::clear_fault_spec();

    Buffer x(ScalarType::F32, {4}), y(ScalarType::F32, {4});
    std::vector<RunArg> args = {RunArg::make_size(4),
                                RunArg::make_buffer(&x),
                                RunArg::make_buffer(&y)};
    SandboxLimits limits;
    limits.wall_seconds = 0.5;
    SandboxOutcome so = spinning.run_sandboxed(args, limits);
    EXPECT_FALSE(so.ok);
    EXPECT_EQ(so.fault.kind, FaultKind::Timeout);
    EXPECT_EQ(so.fault.phase, FaultPhase::Execute);
    EXPECT_LT(so.fault.elapsed_seconds, 30.0);  // watchdog, not luck
    EXPECT_GE(verify::fault_injection_counts().hang, 1u);
}

TEST_F(SandboxTest, TimePerCallSandboxedSurvivesCrashes)
{
    FaultSpec s;
    s.sigsegv = 1.0;
    verify::set_fault_spec(s);
    CompiledProc crashing(double_proc());
    verify::clear_fault_spec();

    Buffer x(ScalarType::F32, {4}), y(ScalarType::F32, {4});
    std::vector<RunArg> args = {RunArg::make_size(4),
                                RunArg::make_buffer(&x),
                                RunArg::make_buffer(&y)};
    verify::TimedOutcome to =
        crashing.time_per_call_sandboxed(args, 0.01, 64);
    EXPECT_FALSE(to.ok);
    EXPECT_EQ(to.fault.kind, FaultKind::Crash);

    // And the clean path measures a positive per-call time.
    CompiledProc clean(double_proc());
    verify::TimedOutcome good =
        clean.time_per_call_sandboxed(args, 0.01, 64);
    ASSERT_TRUE(good.ok) << good.fault.to_string();
    EXPECT_GT(good.seconds_per_call, 0.0);
}

TEST_F(SandboxTest, InjectedIsaFailureDegradesToScalar)
{
    if (!verify::cjit_cpu_supports(NativeIsa::Avx2))
        GTEST_SKIP() << "CPU has no AVX2+FMA";
    const auto& k = kernels::find_kernel("saxpy");
    ProcPtr opt = sched::optimize_level_1(
        k.proc, k.proc->find_loop(k.main_loop), k.prec, machine_avx2(),
        2);

    // Sanity: without injection this proc really does go native.
    {
        CompiledProc native(opt, NativeIsa::Avx2);
        ASSERT_TRUE(native.is_native());
    }

    FaultSpec s;
    s.isa_fail = 1.0;
    verify::set_fault_spec(s);
    verify::clear_isa_downgrades();
    CompiledProc cp(opt, NativeIsa::Avx2);  // degrades, must not throw
    verify::clear_fault_spec();

    EXPECT_FALSE(cp.is_native());
    EXPECT_EQ(cp.isa(), NativeIsa::Scalar);
    auto log = verify::isa_downgrades();
    ASSERT_GE(log.size(), 1u);
    EXPECT_EQ(log.back().requested, NativeIsa::Avx2);
    EXPECT_EQ(log.back().used, NativeIsa::Scalar);
    EXPECT_FALSE(log.back().reason.empty());
    EXPECT_GE(verify::fault_injection_counts().isa_fail, 1u);

    // The degraded scalar build still computes the right answer.
    auto rep = tri_oracle_check(k.proc, opt, {{"n", 19}}, 77);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(SandboxTest, UnsupportedEnvIsaDegradesInsteadOfThrowing)
{
    // An explicit EXO2_NATIVE_ISA the CPU lacks used to throw; it now
    // resolves to the best supported ISA with a recorded downgrade.
    if (verify::cjit_cpu_supports(NativeIsa::Avx512))
        GTEST_SKIP() << "CPU supports AVX-512; nothing to degrade";
    setenv("EXO2_NATIVE_ISA", "avx512", 1);
    verify::clear_isa_downgrades();
    NativeIsa got = NativeIsa::Scalar;
    EXPECT_NO_THROW(got = verify::cjit_env_isa());
    unsetenv("EXO2_NATIVE_ISA");
    EXPECT_NE(got, NativeIsa::Avx512);
    auto log = verify::isa_downgrades();
    ASSERT_GE(log.size(), 1u);
    EXPECT_EQ(log.back().requested, NativeIsa::Avx512);
}

// ---- 4. Consumers complete under injection ------------------------------

TEST_F(SandboxTest, TriOracleReportsFaultInsteadOfDying)
{
    FaultSpec s;
    s.sigsegv = 1.0;
    verify::set_fault_spec(s);
    ProcPtr p = double_proc();
    auto rep = tri_oracle_check(p, p, {{"n", 8}}, 7);
    EXPECT_FALSE(rep.ok);
    EXPECT_TRUE(rep.is_fault()) << rep.detail;
    EXPECT_EQ(rep.fault.kind, FaultKind::Crash);
    EXPECT_NE(rep.detail.find("fault"), std::string::npos)
        << rep.detail;
}

TEST_F(SandboxTest, FuzzerRecordsFaultsAsReprosAndKeepsGoing)
{
    FaultSpec s;
    s.seed = 77;
    s.sigsegv = 0.6;
    s.compile_fail = 0.3;
    verify::set_fault_spec(s);

    const auto& k = kernels::find_kernel("saxpy");
    int faults = 0;
    for (int i = 0; i < 6; i++) {
        uint64_t seed = 1000 * static_cast<uint64_t>(i) + 7;
        FuzzResult r =
            fuzz_schedule(k.proc, {{"n", 24}}, seed, /*max_steps=*/4);
        // Injection can fault a run but never corrupt its answer.
        ASSERT_TRUE(r.status == FuzzResult::Status::Ok ||
                    r.status == FuzzResult::Status::Fault)
            << fuzz_repro_string("saxpy", seed, r);
        if (r.status == FuzzResult::Status::Fault) {
            faults++;
            EXPECT_TRUE(r.fault.is_fault());
            // The repro is the full applied chain, ready to replay.
            EXPECT_EQ(r.minimized.size(), r.applied.size());
            std::string repro = fuzz_repro_string("saxpy", seed, r);
            EXPECT_NE(repro.find("fuzz fault"), std::string::npos)
                << repro;
        }
    }
    EXPECT_GE(faults, 1) << "spec injected nothing across 6 runs";
}

TEST_F(SandboxTest, AutotuneCompletesUnderInjection)
{
    FaultSpec s;
    s.seed = 5;
    s.sigsegv = 0.25;
    s.compile_fail = 0.1;
    verify::set_fault_spec(s);
    verify::reset_fault_injection_counts();

    tune::TuneOpts o;
    o.tune_sizes = {{"n", 512}};
    o.beam_width = 3;
    o.max_rounds = 3;
    o.jit_topk = 4;
    tune::TuneResult r = tune::autotune(
        kernels::find_kernel("saxpy").proc, machine_avx2(), o);

    // The search completed and produced a winner despite crashing and
    // uncompilable candidates along the way.
    ASSERT_TRUE(r.best != nullptr);
    EXPECT_TRUE(r.validated)
        << "no candidate survived validation (validate_rejects="
        << r.stats.validate_rejects << ")";
    bool replay_ok = proc_digest(tune::replay_script(
                         kernels::find_kernel("saxpy").proc,
                         r.script)) == proc_digest(r.best);
    EXPECT_TRUE(replay_ok);
    EXPECT_GE(verify::fault_injection_counts().total(), 1u)
        << "spec injected nothing; the test would be vacuous";
}

}  // namespace
}  // namespace exo2
