/**
 * @file
 * Unit tests for the analysis layer: affine forms, the linear checker
 * (Fourier–Motzkin with div/mod axioms), contexts, and effects.
 */

#include <gtest/gtest.h>

#include "src/analysis/effects.h"
#include "src/frontend/parser.h"
#include "src/ir/builder.h"

namespace exo2 {
namespace {

TEST(Affine, Normalization)
{
    Affine a = to_affine(parse_expr_str("8 * io + ii + 1 - ii"));
    EXPECT_EQ(a.constant, 1);
    EXPECT_EQ(a.coeff_of("io"), 8);
    EXPECT_EQ(a.coeff_of("ii"), 0);
    EXPECT_TRUE(affine_equal(parse_expr_str("(a + b) * 2"),
                             parse_expr_str("2 * a + b + b")));
    EXPECT_FALSE(affine_equal(parse_expr_str("a * b"),
                              parse_expr_str("b * a + 1")));
}

TEST(Affine, OpaqueAtoms)
{
    Affine a = to_affine(parse_expr_str("n / 8 + n / 8"));
    EXPECT_EQ(a.coeff_of("n / 8"), 2);
    Affine b = to_affine(parse_expr_str("i * j"));
    EXPECT_EQ(b.coeff_of("i * j"), 1);
}

TEST(Linear, SimpleImplication)
{
    LinearSystem sys;
    sys.add_pred(parse_expr_str("i >= 0"));
    sys.add_pred(parse_expr_str("i < n"));
    sys.add_pred(parse_expr_str("n <= 10"));
    EXPECT_TRUE(sys.implies_pred(parse_expr_str("i < 10")));
    EXPECT_TRUE(sys.implies_pred(parse_expr_str("i <= 9")));
    EXPECT_FALSE(sys.implies_pred(parse_expr_str("i < 9")));
    EXPECT_TRUE(sys.implies_pred(parse_expr_str("n > 0")));  // from i
}

TEST(Linear, DivModAxioms)
{
    LinearSystem sys;
    sys.add_pred(parse_expr_str("n % 8 == 0"));
    sys.add_pred(parse_expr_str("n >= 0"));
    EXPECT_TRUE(sys.implies_divisible(parse_expr_str("n"), 8));
    EXPECT_TRUE(sys.implies_divisible(parse_expr_str("n"), 4));
    EXPECT_FALSE(sys.implies_divisible(parse_expr_str("n"), 16));
    // (n / 8) * 8 == n when 8 | n.
    EXPECT_TRUE(sys.implies_pred(parse_expr_str("n / 8 * 8 == n")));
}

TEST(Linear, GuardedIndexInRange)
{
    // for io in [0, n/8): for ii in [0,8): 8*io+ii < n  (given 8 | n)
    LinearSystem sys;
    sys.add_pred(parse_expr_str("n % 8 == 0"));
    sys.add_pred(parse_expr_str("n >= 0"));
    sys.add_pred(parse_expr_str("io >= 0"));
    sys.add_pred(parse_expr_str("io < n / 8"));
    sys.add_pred(parse_expr_str("ii >= 0"));
    sys.add_pred(parse_expr_str("ii < 8"));
    EXPECT_TRUE(sys.implies_pred(parse_expr_str("8 * io + ii < n")));
    EXPECT_TRUE(sys.implies_pred(parse_expr_str("8 * io + ii >= 0")));
}

TEST(Linear, CutTailBounds)
{
    // Tail loop: for ii in [0, n % 8): n/8*8 + ii < n.
    LinearSystem sys;
    sys.add_pred(parse_expr_str("n >= 0"));
    sys.add_pred(parse_expr_str("ii >= 0"));
    sys.add_pred(parse_expr_str("ii < n % 8"));
    EXPECT_TRUE(sys.implies_pred(parse_expr_str("n / 8 * 8 + ii < n")));
}

const char* kGemv = R"(
def gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]
)";

TEST(Context, AtPath)
{
    ProcPtr p = parse_proc(kGemv);
    // Context inside loop j (path: body[0].body[0].body[0]).
    Path path = {{PathLabel::Body, 0},
                 {PathLabel::Body, 0},
                 {PathLabel::Body, 0}};
    Context ctx = Context::at(p, path);
    ASSERT_EQ(ctx.binders().size(), 2u);
    EXPECT_EQ(ctx.binders()[0].name, "i");
    EXPECT_TRUE(ctx.prove_lt(var("i"), var("M")));
    EXPECT_TRUE(ctx.prove_ge0(var("j")));
    EXPECT_FALSE(ctx.prove_lt(var("i"), var("N")));
}

TEST(Effects, CollectGemv)
{
    ProcPtr p = parse_proc(kGemv);
    auto accs = collect_accesses_block(p->body_stmts());
    // y reduce, A read, x read, plus index reads of i/j.
    bool saw_reduce = false;
    bool saw_a = false;
    for (const auto& a : accs) {
        if (a.buf == "y" && a.kind == AccessKind::Reduce)
            saw_reduce = true;
        if (a.buf == "A" && a.kind == AccessKind::Read) {
            saw_a = true;
            EXPECT_EQ(a.binders.size(), 2u);
        }
    }
    EXPECT_TRUE(saw_reduce);
    EXPECT_TRUE(saw_a);
}

TEST(Effects, CommuteDisjointWrites)
{
    const char* src = R"(
def foo(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for i in seq(0, n):
        y[i] = 2.0
)";
    ProcPtr p = parse_proc(src);
    Context ctx = Context::at(p, {{PathLabel::Body, 0}});
    EXPECT_TRUE(stmts_commute(ctx, p->body_stmts()[0], p->body_stmts()[1]));
}

TEST(Effects, NoCommuteOverlap)
{
    const char* src = R"(
def foo(n: size, x: f32[n] @ DRAM):
    x[0] = 1.0
    x[0] = 2.0
)";
    ProcPtr p = parse_proc(src);
    Context ctx = Context::at(p, {{PathLabel::Body, 0}});
    EXPECT_FALSE(stmts_commute(ctx, p->body_stmts()[0], p->body_stmts()[1]));
}

TEST(Effects, CommuteShiftedRanges)
{
    const char* src = R"(
def foo(n: size, x: f32[2 * n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for i in seq(0, n):
        x[n + i] = 2.0
)";
    ProcPtr p = parse_proc(src);
    Context ctx = Context::at(p, {{PathLabel::Body, 0}});
    EXPECT_TRUE(stmts_commute(ctx, p->body_stmts()[0], p->body_stmts()[1]));
}

TEST(Effects, LoopIterationsCommute)
{
    ProcPtr p = parse_proc(kGemv);
    Context ctx = Context::at(p, {{PathLabel::Body, 0}});
    // gemv outer loop: iterations write disjoint y[i]; A/x reads only.
    EXPECT_TRUE(loop_iterations_commute(ctx, p->body_stmts()[0]));
    // Inner loop: reductions into the same y[i] — commute (reduction),
    // but not parallelizable.
    Context ctx2 = Context::inside(p, {{PathLabel::Body, 0}});
    const StmtPtr& inner = p->body_stmts()[0]->body()[0];
    EXPECT_TRUE(loop_iterations_commute(ctx2, inner));
    EXPECT_FALSE(loop_parallelizable(ctx2, inner));
}

TEST(Effects, LoopCarriedDependence)
{
    const char* src = R"(
def foo(n: size, x: f32[n + 1] @ DRAM):
    for i in seq(0, n):
        x[i] = x[i + 1]
)";
    ProcPtr p = parse_proc(src);
    Context ctx = Context::at(p, {{PathLabel::Body, 0}});
    std::string why;
    EXPECT_FALSE(loop_iterations_commute(ctx, p->body_stmts()[0], &why));
}

TEST(Effects, Idempotence)
{
    ProcPtr p = parse_proc(R"(
def foo(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = y[i]
    for i in seq(0, n):
        x[i] += y[i]
)");
    EXPECT_TRUE(stmt_idempotent(p->body_stmts()[0]));
    EXPECT_FALSE(stmt_idempotent(p->body_stmts()[1]));
}

}  // namespace
}  // namespace exo2
