/**
 * @file
 * C code generator tests: structure of the emitted code, intrinsic
 * rendering, stride/window lowering, and backend checks.
 */

#include <gtest/gtest.h>

#include "src/codegen/c_codegen.h"
#include "src/frontend/parser.h"
#include "src/kernels/blas.h"
#include "src/sched/blas.h"

namespace exo2 {
namespace {

TEST(Codegen, ScalarKernel)
{
    ProcPtr p = parse_proc(R"(
def gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]
)");
    std::string c = codegen_c(p);
    EXPECT_NE(c.find("void gemv(int64_t M, int64_t N, float* A, "
                     "float* x, float* y)"),
              std::string::npos)
        << c;
    EXPECT_NE(c.find("for (int64_t i = 0; i < M; i++)"),
              std::string::npos);
    // Row-major linearization of A[i, j].
    EXPECT_NE(c.find("A[(i) * (N) + (j)]"), std::string::npos) << c;
}

TEST(Codegen, VectorizedKernelUsesIntrinsics)
{
    const auto& k = kernels::find_kernel("saxpy");
    ProcPtr opt = sched::optimize_level_1(
        k.proc, k.proc->find_loop("i"), k.prec, machine_avx2(), 2);
    std::string c = codegen_c(opt);
    EXPECT_NE(c.find("mm256_fmadd_ps("), std::string::npos) << c;
    EXPECT_NE(c.find("/* AVX2 register */"), std::string::npos);
    // Window arguments lower to pointers.
    EXPECT_NE(c.find("&y["), std::string::npos);
    EXPECT_GT(codegen_c_lines(opt), 20);
}

TEST(Codegen, IfAndPragma)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in par(0, n):
        if i < 4:
            x[i] = 1.0
)");
    // The OpenMP pragma is opt-in: a Par loop is a claim, and emitting
    // the pragma should be paired with a race-free certificate
    // (lint::certify_parallel_loops), so the default stays serial.
    std::string c = codegen_c(p);
    EXPECT_EQ(c.find("#pragma omp parallel for"), std::string::npos) << c;
    EXPECT_NE(c.find("if ((i < 4))"), std::string::npos) << c;

    CodegenOpts omp;
    omp.emit_openmp = true;
    std::string c_omp = codegen_c(p, omp);
    EXPECT_NE(c_omp.find("#pragma omp parallel for"), std::string::npos)
        << c_omp;
}

TEST(Codegen, BackendRejectsArityMismatch)
{
    // A malformed access (wrong arity) must be caught during lowering.
    ProcPtr bad = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)");
    // Hand-build an ill-typed variant: read x with 2 indices.
    auto body = bad->body_stmts();
    StmtPtr loop = body[0];
    StmtPtr assign = Stmt::make_assign(
        "x", {Expr::make_read("i", {}, ScalarType::Index),
              Expr::make_read("i", {}, ScalarType::Index)},
        loop->body()[0]->rhs(), ScalarType::F32);
    StmtPtr new_loop = loop->with_body({assign});
    ProcPtr broken = Proc::make("f", bad->args(), {}, {new_loop});
    EXPECT_THROW(codegen_c(broken), SchedulingError);
}

}  // namespace
}  // namespace exo2
