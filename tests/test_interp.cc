/**
 * @file
 * Interpreter tests: windows and views, calls through instruction
 * semantics bodies, configuration state, extern functions, integer
 * conversion semantics, and dynamic checking.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/interp/interp.h"
#include "src/ir/errors.h"
#include "src/machine/machine.h"

namespace exo2 {
namespace {

TEST(Interp, BasicLoopAndReduce)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, res: f32[1] @ DRAM):
    for i in seq(0, n):
        res[0] += x[i]
)");
    Buffer x(ScalarType::F32, {4});
    Buffer r(ScalarType::F32, {1});
    x.fill(1.5);
    r.fill(0);
    interp_run(p, {RunArg::make_size(4), RunArg::make_buffer(&x),
                   RunArg::make_buffer(&r)});
    EXPECT_FLOAT_EQ(static_cast<float>(r.at(0)), 6.0f);
}

TEST(Interp, WindowsCompose)
{
    ProcPtr callee = parse_proc(R"(
def fill(dst: [f32][2, 2] @ DRAM):
    for i in seq(0, 2):
        for j in seq(0, 2):
            dst[i, j] = 7.0
)");
    ProcPtr p = parse_proc(R"(
def f(A: f32[4, 4] @ DRAM):
    fill(A[1:3, 2:4])
)",
                           {callee});
    Buffer a(ScalarType::F32, {4, 4});
    a.fill(0);
    interp_run(p, {RunArg::make_buffer(&a)});
    EXPECT_EQ(a.at(1 * 4 + 2), 7.0);
    EXPECT_EQ(a.at(2 * 4 + 3), 7.0);
    EXPECT_EQ(a.at(0), 0.0);
    EXPECT_EQ(a.at(1 * 4 + 1), 0.0);
}

TEST(Interp, InstructionSemantics)
{
    // A masked load through the instruction's semantics body.
    const VecInstrSet& s = machine_avx2().instrs(ScalarType::F32);
    ProcPtr p = parse_proc(R"(
def f(x: f32[8] @ DRAM, y: f32[8] @ DRAM):
    v: f32[8] @ AVX2
    mm256_maskz_loadu_ps(5, v[0:8], x[0:5])
    mm256_storeu_ps(y[0:8], v[0:8])
)",
                           {s.load_pred, s.store});
    Buffer x(ScalarType::F32, {8});
    Buffer y(ScalarType::F32, {8});
    x.fill(3.0);
    y.fill(-1.0);
    interp_run(p, {RunArg::make_buffer(&x), RunArg::make_buffer(&y)});
    EXPECT_EQ(y.at(0), 3.0);
    EXPECT_EQ(y.at(4), 3.0);
    EXPECT_EQ(y.at(5), 0.0);  // masked lanes stay zero-initialized
}

TEST(Interp, ConfigState)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[2] @ DRAM):
    cfg.v = 4
    x[0] = cfg.v
    cfg.v = 9
    x[1] = cfg.v
)");
    Buffer x(ScalarType::F32, {2});
    interp_run(p, {RunArg::make_buffer(&x)});
    EXPECT_EQ(x.at(0), 4.0);
    EXPECT_EQ(x.at(1), 9.0);
}

TEST(Interp, ExternsAndIntegerConversion)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[3] @ DRAM, y: i8[3] @ DRAM):
    y[0] = clamp_i8(x[0])
    y[1] = relu(x[1])
    y[2] = abs(x[2])
)");
    Buffer x(ScalarType::F32, {3});
    Buffer y(ScalarType::I8, {3});
    x.set(0, 300.0);
    x.set(1, -5.0);
    x.set(2, -2.0);
    interp_run(p, {RunArg::make_buffer(&x), RunArg::make_buffer(&y)});
    EXPECT_EQ(y.at(0), 127.0);  // clamped
    EXPECT_EQ(y.at(1), 0.0);    // relu
    EXPECT_EQ(y.at(2), 2.0);    // abs
}

TEST(Interp, DynamicBoundsCheck)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    x[n] = 1.0
)");
    Buffer x(ScalarType::F32, {4});
    EXPECT_THROW(
        interp_run(p, {RunArg::make_size(4), RunArg::make_buffer(&x)}),
        InternalError);
}

TEST(Interp, AssertChecking)
{
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    assert n % 2 == 0
    for i in seq(0, n):
        x[i] = 1.0
)");
    Buffer x(ScalarType::F32, {3});
    EXPECT_THROW(
        interp_run(p, {RunArg::make_size(3), RunArg::make_buffer(&x)}),
        InternalError);
}

TEST(Interp, StrideExpr)
{
    ProcPtr p = parse_proc(R"(
def f(A: f32[3, 5] @ DRAM, x: f32[2] @ DRAM):
    x[0] = stride(A, 0)
    x[1] = stride(A, 1)
)");
    Buffer a(ScalarType::F32, {3, 5});
    Buffer x(ScalarType::F32, {2});
    interp_run(p, {RunArg::make_buffer(&a), RunArg::make_buffer(&x)});
    EXPECT_EQ(x.at(0), 5.0);
    EXPECT_EQ(x.at(1), 1.0);
}

}  // namespace
}  // namespace exo2
