/**
 * @file
 * Tests for the Halide reproduction (Section 6.3.2): bounds inference,
 * compute_at/store_at fusion with recompute, and the complete Figure 12
 * blur schedule, with interpreter equivalence.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/inspect/bounds.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/kernels/image.h"
#include "src/sched/halide.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using testing_support::expect_equiv;

TEST(BoundsInference, StencilWindow)
{
    // The paper's Section 4 example: arr accessed within
    // [32*io : 32*io + 34] inside the io loop.
    const char* src = R"(
def f(N: size, arr: f32[32 * N + 2] @ DRAM, x: f32[32 * N] @ DRAM):
    for io in seq(0, N):
        for ii in seq(0, 32):
            x[32 * io + ii] = arr[32 * io + ii] + arr[32 * io + ii + 1] + arr[32 * io + ii + 2]
)";
    ProcPtr p = parse_proc(src);
    auto b = inspect::infer_bounds(p, p->find_loop("io"), "arr");
    ASSERT_EQ(b.size(), 1u);
    Context ctx = Context::inside(p, p->find_loop("io").loc().path);
    EXPECT_EQ(print_expr(simplify_expr(ctx, b[0].lo)), "32 * io");
    // The inner binder ii is NOT eliminated here (it is bound inside
    // the scope): [32*io, 32*io+ii+3) per access; union keeps the
    // extreme ii = 31, giving the paper's [32*io : 32*io + 34].
    EXPECT_EQ(print_expr(simplify_expr(ctx, b[0].hi)), "32 * io + 34");
}

TEST(BoundsInference, EliminatesInnerBinders)
{
    const char* src = R"(
def f(N: size, arr: f32[34 * N] @ DRAM, x: f32[N] @ DRAM):
    for io in seq(0, N):
        for ii in seq(0, 34):
            x[io] += arr[32 * io + ii]
)";
    ProcPtr p = parse_proc(src);
    auto b = inspect::infer_bounds(p, p->find_loop("io"), "arr");
    ASSERT_EQ(b.size(), 1u);
    Context ctx = Context::inside(p, p->find_loop("io").loc().path);
    EXPECT_EQ(print_expr(simplify_expr(ctx, b[0].lo)), "32 * io");
    EXPECT_EQ(print_expr(simplify_expr(ctx, b[0].hi)), "32 * io + 34");
}

TEST(Halide, TileBlur)
{
    ProcPtr p = kernels::blur();
    ProcPtr t = sched::H_tile(p, "blur_y", "y", "x", "yi", "xi", 32, 256);
    // Loop order y, x, yi, xi over the blur_y nest.
    Cursor store = t->find("blur_y[_] = _");
    (void)store;
    EXPECT_NO_THROW(t->find_loop("yi"));
    EXPECT_NO_THROW(t->find_loop("xi"));
    expect_equiv(p, t, {{"H", 32}, {"W", 256}});
}

TEST(Halide, ComputeStoreAtBlur)
{
    ProcPtr p = kernels::blur();
    ProcPtr t = sched::H_tile(p, "blur_y", "y", "x", "yi", "xi", 32, 256);
    ProcPtr f;
    ASSERT_NO_THROW(f = sched::H_compute_store_at(t, "blur_x", "blur_y",
                                                  "x"));
    // The producer allocation now lives inside the tile and is small.
    Cursor ac = f->find_alloc("blur_x");
    ASSERT_EQ(ac.stmt()->dims().size(), 2u);
    EXPECT_EQ(print_expr(ac.stmt()->dims()[0]), "34");
    EXPECT_EQ(print_expr(ac.stmt()->dims()[1]), "256");
    expect_equiv(p, f, {{"H", 32}, {"W", 256}});
    expect_equiv(p, f, {{"H", 64}, {"W", 512}});
}

TEST(Halide, FullBlurSchedule)
{
    ProcPtr p = kernels::blur();
    ProcPtr s;
    ASSERT_NO_THROW(
        s = sched::schedule_blur_like_halide(p, machine_avx512()));
    std::string printed = print_proc(s);
    EXPECT_NE(printed.find("mm512_"), std::string::npos) << printed;
    EXPECT_NE(printed.find("DRAM_STACK"), std::string::npos);
    EXPECT_NE(printed.find("par("), std::string::npos);
    expect_equiv(p, s, {{"H", 32}, {"W", 256}}, 2e-4);
    expect_equiv(p, s, {{"H", 64}, {"W", 512}}, 2e-4);
}

TEST(Halide, FullUnsharpSchedule)
{
    ProcPtr p = kernels::unsharp();
    ProcPtr s;
    ASSERT_NO_THROW(
        s = sched::schedule_unsharp_like_halide(p, machine_avx512()));
    expect_equiv(p, s, {{"H", 32}, {"W", 256}}, 2e-4);
}

}  // namespace
}  // namespace exo2
