/**
 * @file
 * Section 5.1's scheduling time models, demonstrated executable: the
 * branching time model (multiple live versions of a procedure, cursors
 * pinned to versions) subsumes the linear model (rewind on error) and
 * the fixed model (Halide-style nominal references that stay valid).
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/printer.h"
#include "src/sched/combinators.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using namespace exo2::sched;
using testing_support::expect_equiv;

TEST(TimeModels, BranchingVersionsCoexist)
{
    // Two schedules branch from one procedure; cursors live at their
    // own versions and both branches remain usable.
    ProcPtr base = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)");
    ProcPtr a = divide_loop(base, "i", 4, {"io", "ii"},
                            TailStrategy::Cut);
    ProcPtr b = divide_loop(base, "i", 8, {"io", "ii"},
                            TailStrategy::Guard);
    Cursor on_base = base->find("x[_] = _");
    Cursor on_a = a->forward(on_base);
    Cursor on_b = b->forward(on_base);
    ASSERT_TRUE(on_a.is_valid());
    ASSERT_TRUE(on_b.is_valid());
    // The two branches forwarded the same origin differently.
    EXPECT_NE(print_stmt(on_a.stmt()), print_stmt(on_b.stmt()));
    expect_equiv(base, a, {{"n", 10}});
    expect_equiv(base, b, {{"n", 10}});
}

TEST(TimeModels, LinearRewindOnError)
{
    // The linear model's rewind: a failing composite leaves the old
    // version untouched (procedures are immutable values).
    ProcPtr base = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)");
    ProcPtr before = base;
    try {
        ProcPtr tmp = divide_loop(base, "i", 4, {"a", "b"},
                                  TailStrategy::Cut);
        tmp = divide_loop(tmp, "a", 3, {"c", "d"},
                          TailStrategy::Perfect);  // unprovable: throws
        FAIL() << "expected SchedulingError";
    } catch (const SchedulingError&) {
    }
    EXPECT_EQ(before, base);  // nothing mutated
    EXPECT_NO_THROW(base->find_loop("i"));
}

TEST(TimeModels, ErrorTaxonomy)
{
    // Section 3.3's three error kinds are distinct and selectable.
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
)");
    bool caught_sched = false;
    try {
        (void)divide_loop(p, "i", 3, {"a", "b"}, TailStrategy::Perfect);
    } catch (const SchedulingError&) {
        caught_sched = true;
    }
    EXPECT_TRUE(caught_sched);

    bool caught_cursor = false;
    try {
        (void)p->find_loop("i").parent();
    } catch (const InvalidCursorError&) {
        caught_cursor = true;
    }
    EXPECT_TRUE(caught_cursor);
}

}  // namespace
}  // namespace exo2
