/**
 * @file
 * Property-style tests of cursor forwarding (Section 5.2): across each
 * atomic edit and across whole scheduling pipelines, a cursor to an
 * untouched statement must forward to a structurally equal statement
 * (the paper's invariant for code in C or the T_i subtrees), and
 * invalidation must be deterministic.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "src/cursor/accel.h"
#include "src/cursor/edits.h"
#include "src/cursor/pattern.h"
#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/util/rng.h"
#include "src/sched/blas.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

const char* kTwoNests = R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for j in seq(0, n):
        y[j] = x[j] * 2.0
)";

TEST(Forwarding, UntouchedSubtreeSurvivesEdits)
{
    // Figure 3's scenario: tiling the first nest leaves a cursor into
    // the second nest valid and unchanged.
    ProcPtr p = parse_proc(kTwoNests);
    Cursor second = p->find("y[_] = _");
    StmtPtr before = second.stmt();
    ProcPtr p2 = divide_loop(p, "i", 4, {"io", "ii"}, TailStrategy::Cut);
    Cursor fwd = p2->forward(second);
    ASSERT_TRUE(fwd.is_valid());
    EXPECT_TRUE(stmt_equal(before, fwd.stmt()));
}

TEST(Forwarding, InsertionShiftsSiblings)
{
    ProcPtr p = parse_proc(kTwoNests);
    Cursor second_loop = p->find_loop("j");
    Cursor first_loop = p->find_loop("i");
    // bind_expr inserts two statements inside the j body: cursors into
    // the i nest are untouched; the j loop keeps pointing at itself.
    Cursor rhs = p->find("y[_] = _").rhs();
    ProcPtr p2 = bind_expr(p, rhs, "t0");
    EXPECT_TRUE(stmt_equal(p2->forward(first_loop).stmt(),
                           first_loop.stmt()));
    EXPECT_EQ(p2->forward(second_loop).stmt()->iter(), "j");
}

TEST(Forwarding, DeletionInvalidatesInside)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    dead: f32[4] @ DRAM
    x[0] = 1.0
)");
    Cursor alloc = p->find_alloc("dead");
    Cursor live = p->find("x[_] = _");
    ProcPtr p2 = delete_buffer(p, alloc);
    EXPECT_FALSE(p2->forward(alloc).is_valid());
    ASSERT_TRUE(p2->forward(live).is_valid());
    EXPECT_TRUE(stmt_equal(p2->forward(live).stmt(), live.stmt()));
}

TEST(Forwarding, NavigationAfterForwarding)
{
    // Implicit forwarding composes with navigation as documented:
    // p.forward(c.next()) rather than p.forward(c).next().
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for j in seq(0, n):
        y[j] = 2.0
)");
    Cursor first = p->find_loop("i");
    ProcPtr p2 = reorder_stmts(p, first, p->find_loop("j"));
    // After the swap the i loop is second.
    Cursor fwd = p2->forward(first);
    EXPECT_EQ(fwd.stmt()->iter(), "i");
    EXPECT_EQ(fwd.prev().stmt()->iter(), "j");
}

TEST(Forwarding, GapAndBlockSurviveInsertion)
{
    ProcPtr p = parse_proc(kTwoNests);
    Cursor blk = p->body();  // block over both nests
    Cursor gap = p->find_loop("j").before();
    ProcPtr p2 = bind_expr(p, p->find("y[_] = _").rhs(), "t0");
    Cursor blk2 = p2->forward(blk);
    ASSERT_TRUE(blk2.is_valid());
    EXPECT_EQ(blk2.block_size(), 2);
    EXPECT_TRUE(p2->forward(gap).is_valid());
}

/** Whole-pipeline property: forward a cursor to the *untouched* nest
 *  through the full level-1 pipeline applied to the other nest. */
class ForwardingPipeline : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ForwardingPipeline, SurvivesLevel1Pipeline)
{
    const auto& k = kernels::find_kernel(GetParam());
    // Append an unrelated epilogue nest the schedule never touches.
    ProcPtr p = k.proc;
    Cursor loop = p->find_loop(k.main_loop);
    ProcPtr opt = sched::optimize_level_1(p, loop, k.prec, machine_avx2(),
                                          2);
    // The original loop cursor forwards deterministically (heuristic
    // forwarding may remap it, but must not throw).
    Cursor fwd = opt->forward(loop);
    if (fwd.is_valid())
        EXPECT_NO_THROW((void)fwd.stmt());
}

INSTANTIATE_TEST_SUITE_P(Kernels, ForwardingPipeline,
                         ::testing::Values("saxpy", "sdot", "scopy",
                                           "srot", "sscal"));

// ---- Invalid-cursor semantics (PR 2 regression tests) -------------------

TEST(Forwarding, InvalidCursorsCompareEqual)
{
    // is_valid() is the only observable state of an invalid cursor, so
    // invalid cursors on different procs (or with no proc at all) must
    // compare equal, and never equal to a valid cursor.
    ProcPtr p = parse_proc(kTwoNests);
    ProcPtr q = parse_proc(kTwoNests);
    EXPECT_TRUE(Cursor::invalid(p) == Cursor::invalid(q));
    EXPECT_TRUE(Cursor::invalid(p) == Cursor());
    Cursor valid = p->find_loop("i");
    EXPECT_FALSE(valid == Cursor::invalid(p));
    EXPECT_FALSE(Cursor::invalid(p) == valid);
}

TEST(Forwarding, InvalidatedCursorAcrossBatchedEdits)
{
    // bind_expr commits its insert + expression rewrite as ONE batched
    // version. A cursor strictly below the rewritten expression is
    // invalidated by that single hop, stays invalid across later edits,
    // and compares equal to any other invalid cursor.
    ProcPtr p = parse_proc(kTwoNests);
    Cursor rhs = p->find("y[_] = _").rhs();  // x[j] * 2.0
    CursorLoc operand_loc = rhs.loc();
    operand_loc.path.push_back({PathLabel::OpLhs, -1});
    Cursor operand(p, operand_loc);

    ProcPtr p2 = bind_expr(p, rhs, "t0");
    // Exactly one provenance hop for the whole primitive.
    ASSERT_TRUE(p2->provenance());
    EXPECT_EQ(p2->provenance()->parent.get(), p.get());
    EXPECT_FALSE(p2->forward(operand).is_valid());
    // The rewritten expression node itself stays addressable.
    EXPECT_TRUE(p2->forward(rhs).is_valid());

    ProcPtr p3 = divide_loop(p2, "i", 4, {"io", "ii"}, TailStrategy::Cut);
    Cursor dead = p3->forward(operand);
    EXPECT_FALSE(dead.is_valid());
    EXPECT_TRUE(dead == Cursor::invalid(p2));
    EXPECT_TRUE(dead == p2->forward(operand));
}

// ---- Randomized equivalence: compression/index vs naive -----------------
//
// The accelerated paths (forwarding path compression, subtree pattern
// index) must be observationally identical to naive provenance replay
// and full-tree search. We drive hundreds of random edit sequences,
// collect cursors at every intermediate version, and compare both
// implementations via the kill switches in cursor/accel.h.

namespace {

using Rng = exo2::XorShiftRng;  // the shared seeded RNG (util/rng.h)

/** All statement-list addresses of a proc, with their current sizes. */
void
collect_lists(const std::vector<StmtPtr>& block, const Path& path,
              PathLabel label,
              std::vector<std::pair<ListAddr, int>>* out)
{
    out->push_back({ListAddr{path, label},
                    static_cast<int>(block.size())});
    for (size_t i = 0; i < block.size(); i++) {
        Path here = path;
        here.push_back({label, static_cast<int>(i)});
        const StmtPtr& s = block[i];
        if (!s->body().empty())
            collect_lists(s->body(), here, PathLabel::Body, out);
        if (!s->orelse().empty())
            collect_lists(s->orelse(), here, PathLabel::Orelse, out);
    }
}

std::vector<std::pair<ListAddr, int>>
all_lists(const ProcPtr& p)
{
    std::vector<std::pair<ListAddr, int>> out;
    collect_lists(p->body_stmts(), {}, PathLabel::Body, &out);
    return out;
}

/** Apply one random atomic edit (possibly a multi-edit batch). */
ProcPtr
random_edit(const ProcPtr& p, Rng* rng, int step)
{
    auto lists = all_lists(p);
    auto& [addr, size] = lists[rng->below(static_cast<int>(lists.size()))];
    std::string uniq = std::to_string(step);
    switch (rng->below(6)) {
      case 0:  // insert a Pass at a random gap
        return apply_insert(p, addr, rng->below(size + 1),
                            {Stmt::make_pass()}, "rand_insert");
      case 1: {  // wrap a random range in a fresh loop
        int lo = rng->below(size);
        int hi = lo + 1 + rng->below(size - lo);
        return apply_wrap(p, addr, lo, hi,
                          [&](std::vector<StmtPtr> block) {
                              return Stmt::make_for("w" + uniq,
                                                    idx_const(0),
                                                    idx_const(2),
                                                    std::move(block));
                          },
                          "rand_wrap");
      }
      case 2: {  // erase one statement (keep the list non-empty)
        if (size < 2)
            return p;
        int lo = rng->below(size);
        return apply_erase(p, addr, lo, lo + 1, "rand_erase");
      }
      case 3: {  // replace a range with a Pass
        int lo = rng->below(size);
        int hi = lo + 1 + rng->below(size - lo);
        return apply_replace_range(p, addr, lo, hi, {Stmt::make_pass()},
                                   "rand_replace");
      }
      case 4: {  // move a statement within its list
        if (size < 2)
            return p;
        int lo = rng->below(size);
        int gap = rng->below(size);  // post-deletion gap in [0, size-1]
        return apply_move(p, addr, lo, lo + 1, addr, gap, "rand_move");
      }
      default: {  // batched: insert + wrap committed as one version
        EditBatch batch(p);
        batch.insert(addr, rng->below(size + 1), {Stmt::make_pass()});
        batch.wrap(addr, 0, 1, [&](std::vector<StmtPtr> block) {
            return Stmt::make_for("b" + uniq, idx_const(0), idx_const(2),
                                  std::move(block));
        });
        return batch.commit("rand_batch");
      }
    }
}

/** Random cursors on `p`: nodes, gaps, and blocks at random lists. */
std::vector<Cursor>
random_cursors(const ProcPtr& p, Rng* rng, int count)
{
    auto lists = all_lists(p);
    std::vector<Cursor> out;
    for (int k = 0; k < count; k++) {
        auto& [addr, size] = lists[rng->below(static_cast<int>(lists.size()))];
        CursorLoc l;
        l.path = addr.parent;
        switch (rng->below(3)) {
          case 0: {
            l.kind = CursorKind::Node;
            l.path.push_back(
                {addr.label, static_cast<int>(rng->below(size))});
            break;
          }
          case 1: {
            l.kind = CursorKind::Gap;
            l.path.push_back(
                {addr.label, static_cast<int>(rng->below(size + 1))});
            break;
          }
          default: {
            l.kind = CursorKind::Block;
            int lo = rng->below(size);
            l.hi = lo + 1 + rng->below(size - lo);
            l.path.push_back({addr.label, lo});
            break;
          }
        }
        out.push_back(Cursor(p, std::move(l)));
    }
    return out;
}

}  // namespace

TEST(Forwarding, RandomizedCompressionMatchesNaiveReplay)
{
    const char* kBase = R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
        y[i] = x[i] * 2.0
    for j in seq(0, n):
        if j < 4:
            y[j] = 0.0
    for k in seq(0, n):
        x[k] = y[k]
)";
    ProcPtr base = parse_proc(kBase);
    Rng rng(20260728);
    int checked = 0;
    for (int seq = 0; seq < 500; seq++) {
        ProcPtr cur = base;
        std::vector<Cursor> cursors;
        int len = 3 + rng.below(6);
        ProcPtr mid;
        size_t midcount = 0;
        for (int step = 0; step < len; step++) {
            for (auto& c : random_cursors(cur, &rng, 2))
                cursors.push_back(std::move(c));
            cur = random_edit(cur, &rng, seq * 100 + step);
            if (step == len / 2) {
                mid = cur;  // checkpoint: warms intermediate-hit paths
                midcount = cursors.size();
            }
        }
        // Forward everything with compression on FIRST (the second
        // forward of each cursor hits the warm cache — the production
        // path), then everything naively, then compare. Toggling per
        // cursor would clear the cache between comparisons and leave
        // the memo-hit branch untested.
        std::vector<Cursor> fast;
        set_forwarding_compression_enabled(true);
        // Warm the checkpoint version first: forwarding to `cur` then
        // stops its chain walk at `mid`'s cached entries (the
        // hit-at-intermediate-ancestor branch).
        for (size_t i = 0; i < midcount; i++)
            (void)mid->forward(cursors[i]);
        for (const Cursor& c : cursors) {
            Cursor cold = cur->forward(c);
            Cursor warm = cur->forward(c);  // cache hit at the target
            ASSERT_TRUE(cold == warm)
                << "warm forward differs from cold at sequence " << seq;
            fast.push_back(std::move(warm));
        }
        set_forwarding_compression_enabled(false);
        for (size_t i = 0; i < cursors.size(); i++) {
            Cursor naive = cur->forward(cursors[i]);
            ASSERT_TRUE(fast[i] == naive)
                << "forwarding mismatch at sequence " << seq;
            checked++;
        }
        set_forwarding_compression_enabled(true);
    }
    EXPECT_GE(checked, 3000);  // >= 500 sequences x >= 3 steps x 2 cursors
}

TEST(Forwarding, RandomizedIndexedFindMatchesFullSearch)
{
    const char* kBase = R"(
def g(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for j in seq(0, n):
        y[j] = x[j] * 2.0
    t: f32[4] @ DRAM
    for k in seq(0, 4):
        t[k] = 0.0
)";
    ProcPtr base = parse_proc(kBase);
    Rng rng(4104);
    const char* patterns[] = {"for _ in _: _", "x[_] = _", "y[_] = _",
                              "t: _",          "for j in _: _",
                              "for w7 in _: _"};
    for (int seq = 0; seq < 500; seq++) {
        ProcPtr cur = base;
        int len = 2 + rng.below(7);
        for (int step = 0; step < len; step++)
            cur = random_edit(cur, &rng, seq * 100 + step);
        for (const char* pat : patterns) {
            set_pattern_index_enabled(true);
            auto indexed = cur->find_all(pat);
            set_pattern_index_enabled(false);
            auto full = cur->find_all(pat);
            set_pattern_index_enabled(true);
            ASSERT_EQ(indexed.size(), full.size())
                << "match count differs for '" << pat << "' at " << seq;
            for (size_t i = 0; i < indexed.size(); i++) {
                ASSERT_TRUE(indexed[i] == full[i])
                    << "match " << i << " differs for '" << pat << "'";
            }
        }
    }
}

}  // namespace
}  // namespace exo2
