/**
 * @file
 * Property-style tests of cursor forwarding (Section 5.2): across each
 * atomic edit and across whole scheduling pipelines, a cursor to an
 * untouched statement must forward to a structurally equal statement
 * (the paper's invariant for code in C or the T_i subtrees), and
 * invalidation must be deterministic.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/printer.h"
#include "src/kernels/blas.h"
#include "src/sched/blas.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

const char* kTwoNests = R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for j in seq(0, n):
        y[j] = x[j] * 2.0
)";

TEST(Forwarding, UntouchedSubtreeSurvivesEdits)
{
    // Figure 3's scenario: tiling the first nest leaves a cursor into
    // the second nest valid and unchanged.
    ProcPtr p = parse_proc(kTwoNests);
    Cursor second = p->find("y[_] = _");
    StmtPtr before = second.stmt();
    ProcPtr p2 = divide_loop(p, "i", 4, {"io", "ii"}, TailStrategy::Cut);
    Cursor fwd = p2->forward(second);
    ASSERT_TRUE(fwd.is_valid());
    EXPECT_TRUE(stmt_equal(before, fwd.stmt()));
}

TEST(Forwarding, InsertionShiftsSiblings)
{
    ProcPtr p = parse_proc(kTwoNests);
    Cursor second_loop = p->find_loop("j");
    Cursor first_loop = p->find_loop("i");
    // bind_expr inserts two statements inside the j body: cursors into
    // the i nest are untouched; the j loop keeps pointing at itself.
    Cursor rhs = p->find("y[_] = _").rhs();
    ProcPtr p2 = bind_expr(p, rhs, "t0");
    EXPECT_TRUE(stmt_equal(p2->forward(first_loop).stmt(),
                           first_loop.stmt()));
    EXPECT_EQ(p2->forward(second_loop).stmt()->iter(), "j");
}

TEST(Forwarding, DeletionInvalidatesInside)
{
    ProcPtr p = parse_proc(R"(
def f(x: f32[4] @ DRAM):
    dead: f32[4] @ DRAM
    x[0] = 1.0
)");
    Cursor alloc = p->find_alloc("dead");
    Cursor live = p->find("x[_] = _");
    ProcPtr p2 = delete_buffer(p, alloc);
    EXPECT_FALSE(p2->forward(alloc).is_valid());
    ASSERT_TRUE(p2->forward(live).is_valid());
    EXPECT_TRUE(stmt_equal(p2->forward(live).stmt(), live.stmt()));
}

TEST(Forwarding, NavigationAfterForwarding)
{
    // Implicit forwarding composes with navigation as documented:
    // p.forward(c.next()) rather than p.forward(c).next().
    ProcPtr p = parse_proc(R"(
def f(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        x[i] = 1.0
    for j in seq(0, n):
        y[j] = 2.0
)");
    Cursor first = p->find_loop("i");
    ProcPtr p2 = reorder_stmts(p, first, p->find_loop("j"));
    // After the swap the i loop is second.
    Cursor fwd = p2->forward(first);
    EXPECT_EQ(fwd.stmt()->iter(), "i");
    EXPECT_EQ(fwd.prev().stmt()->iter(), "j");
}

TEST(Forwarding, GapAndBlockSurviveInsertion)
{
    ProcPtr p = parse_proc(kTwoNests);
    Cursor blk = p->body();  // block over both nests
    Cursor gap = p->find_loop("j").before();
    ProcPtr p2 = bind_expr(p, p->find("y[_] = _").rhs(), "t0");
    Cursor blk2 = p2->forward(blk);
    ASSERT_TRUE(blk2.is_valid());
    EXPECT_EQ(blk2.block_size(), 2);
    EXPECT_TRUE(p2->forward(gap).is_valid());
}

/** Whole-pipeline property: forward a cursor to the *untouched* nest
 *  through the full level-1 pipeline applied to the other nest. */
class ForwardingPipeline : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ForwardingPipeline, SurvivesLevel1Pipeline)
{
    const auto& k = kernels::find_kernel(GetParam());
    // Append an unrelated epilogue nest the schedule never touches.
    ProcPtr p = k.proc;
    Cursor loop = p->find_loop(k.main_loop);
    ProcPtr opt = sched::optimize_level_1(p, loop, k.prec, machine_avx2(),
                                          2);
    // The original loop cursor forwards deterministically (heuristic
    // forwarding may remap it, but must not throw).
    Cursor fwd = opt->forward(loop);
    if (fwd.is_valid())
        EXPECT_NO_THROW((void)fwd.stmt());
}

INSTANTIATE_TEST_SUITE_P(Kernels, ForwardingPipeline,
                         ::testing::Values("saxpy", "sdot", "scopy",
                                           "srot", "sscal"));

}  // namespace
}  // namespace exo2
