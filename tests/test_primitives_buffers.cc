/**
 * @file
 * Tests for buffer-transformation primitives (Appendix A.5).
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/primitives/primitives.h"
#include "tests/test_support.h"

namespace exo2 {
namespace {

using testing_support::expect_equiv;

const char* kStaged = R"(
def staged(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        t: f32[4] @ DRAM
        t[0] = x[i]
        y[i] = t[0] * 2.0
)";

TEST(LiftAlloc, HoistsOutOfLoop)
{
    ProcPtr p = parse_proc(kStaged);
    ProcPtr p2 = lift_alloc(p, p->find_alloc("t"));
    EXPECT_EQ(p2->body_stmts()[0]->kind(), StmtKind::Alloc);
    EXPECT_EQ(p2->body_stmts()[1]->kind(), StmtKind::For);
    expect_equiv(p, p2, {{"n", 6}});
}

TEST(LiftAlloc, RejectsIterDependentDims)
{
    const char* src = R"(
def v(n: size, x: f32[n] @ DRAM):
    for i in seq(0, n):
        t: f32[i + 1] @ DRAM
        t[i] = x[i]
        x[i] = t[i]
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(lift_alloc(p, p->find_alloc("t")), SchedulingError);
}

TEST(SinkAlloc, Inverse)
{
    ProcPtr p = parse_proc(kStaged);
    ProcPtr p2 = lift_alloc(p, p->find_alloc("t"));
    ProcPtr p3 = sink_alloc(p2, p2->find_alloc("t"));
    EXPECT_EQ(p3->body_stmts().size(), 1u);
    expect_equiv(p, p3, {{"n", 5}});
}

TEST(DeleteBuffer, RemovesDead)
{
    const char* src = R"(
def d(x: f32[4] @ DRAM):
    dead: f32[8] @ DRAM
    x[0] = 1.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = delete_buffer(p, p->find_alloc("dead"));
    EXPECT_EQ(p2->body_stmts().size(), 1u);
}

TEST(DeleteBuffer, RejectsLive)
{
    ProcPtr p = parse_proc(kStaged);
    EXPECT_THROW(delete_buffer(p, p->find_alloc("t")), SchedulingError);
}

TEST(ReuseBuffer, MergesAllocations)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM):
    a: f32[8] @ DRAM
    a[0] = x[0]
    x[1] = a[0]
    b: f32[8] @ DRAM
    b[0] = x[1]
    x[2] = b[0]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = reuse_buffer(p, p->find_alloc("a"), p->find_alloc("b"));
    // b's alloc removed; its uses renamed to a.
    EXPECT_THROW(p2->find_alloc("b"), SchedulingError);
    expect_equiv(p, p2, {});
}

TEST(ReuseBuffer, RejectsLiveOverlap)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM):
    a: f32[8] @ DRAM
    a[0] = x[0]
    b: f32[8] @ DRAM
    b[0] = x[1]
    x[2] = b[0] + a[0]
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(reuse_buffer(p, p->find_alloc("a"), p->find_alloc("b")),
                 SchedulingError);
}

TEST(ResizeDim, ShrinkWithOffset)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM):
    t: f32[16] @ DRAM
    for i in seq(0, 4):
        t[i + 8] = x[i]
    for i in seq(0, 4):
        x[i] = t[i + 8]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = resize_dim(p, p->find_alloc("t"), 0, idx_const(4),
                            idx_const(8));
    EXPECT_EQ(print_expr(p2->find_alloc("t").stmt()->dims()[0]), "4");
    expect_equiv(p, p2, {});
}

TEST(ResizeDim, RejectsEscapingAccess)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM):
    t: f32[16] @ DRAM
    for i in seq(0, 8):
        t[i] = x[0]
    x[0] = t[7]
)";
    ProcPtr p = parse_proc(src);
    EXPECT_THROW(
        resize_dim(p, p->find_alloc("t"), 0, idx_const(4), idx_const(0)),
        SchedulingError);
}

TEST(ExpandDim, PerIterationInstances)
{
    ProcPtr p = parse_proc(kStaged);
    // Give each iteration its own row, then lift the alloc out.
    ProcPtr p2 = expand_dim(p, p->find_alloc("t"), var("n"), var("i"));
    ProcPtr p3 = lift_alloc(p2, p2->find_alloc("t"));
    EXPECT_EQ(p3->body_stmts()[0]->dims().size(), 2u);
    expect_equiv(p, p3, {{"n", 5}});
}

TEST(ExpandDim, RejectsOutOfRangeIndex)
{
    ProcPtr p = parse_proc(kStaged);
    EXPECT_THROW(
        expand_dim(p, p->find_alloc("t"), var("n"),
                   var("i") + idx_const(1)),
        SchedulingError);
}

TEST(RearrangeDim, PermutesAccesses)
{
    const char* src = R"(
def r(x: f32[6] @ DRAM):
    t: f32[2, 3] @ DRAM
    for i in seq(0, 2):
        for j in seq(0, 3):
            t[i, j] = x[3 * i + j]
    for i in seq(0, 2):
        for j in seq(0, 3):
            x[3 * i + j] = t[i, j] * 2.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = rearrange_dim(p, p->find_alloc("t"), {1, 0});
    EXPECT_EQ(print_expr(p2->find_alloc("t").stmt()->dims()[0]), "3");
    expect_equiv(p, p2, {});
}

TEST(DivideDim, SplitsConstantDim)
{
    const char* src = R"(
def r(x: f32[16] @ DRAM):
    t: f32[16] @ DRAM
    for i in seq(0, 16):
        t[i] = x[i]
    for i in seq(0, 16):
        x[i] = t[i] + 1.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = divide_dim(p, p->find_alloc("t"), 0, 4);
    const StmtPtr& alloc = p2->find_alloc("t").stmt();
    ASSERT_EQ(alloc->dims().size(), 2u);
    EXPECT_EQ(print_expr(alloc->dims()[0]), "4");
    EXPECT_EQ(print_expr(alloc->dims()[1]), "4");
    expect_equiv(p, p2, {});
}

TEST(MultDim, FusesDims)
{
    const char* src = R"(
def r(x: f32[12] @ DRAM):
    t: f32[3, 4] @ DRAM
    for i in seq(0, 3):
        for j in seq(0, 4):
            t[i, j] = x[4 * i + j]
    for i in seq(0, 3):
        for j in seq(0, 4):
            x[4 * i + j] = t[i, j] * 3.0
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = mult_dim(p, p->find_alloc("t"), 0);
    EXPECT_EQ(p2->find_alloc("t").stmt()->dims().size(), 1u);
    expect_equiv(p, p2, {});
}

TEST(UnrollBuffer, ScalarExplosion)
{
    const char* src = R"(
def r(x: f32[4] @ DRAM):
    t: f32[2] @ DRAM
    t[0] = x[0]
    t[1] = x[1]
    x[2] = t[0] + t[1]
)";
    ProcPtr p = parse_proc(src);
    ProcPtr p2 = unroll_buffer(p, p->find_alloc("t"), 0);
    EXPECT_NE(print_proc(p2).find("t_0"), std::string::npos);
    EXPECT_NE(print_proc(p2).find("t_1"), std::string::npos);
    expect_equiv(p, p2, {});
}

TEST(BindExpr, StagesOperand)
{
    const char* src = R"(
def r(n: size, a: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] += a * x[i]
)";
    ProcPtr p = parse_proc(src);
    Cursor rhs = p->find("y[_] += _").rhs();
    // Bind the whole product a * x[i].
    ProcPtr p2 = bind_expr(p, rhs, "prod");
    EXPECT_NE(print_proc(p2).find("prod: f32"), std::string::npos);
    expect_equiv(p, p2, {{"n", 7}});
}

TEST(BindExpr, CseReplacesAllOccurrences)
{
    const char* src = R"(
def r(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i] * x[i]
)";
    ProcPtr p = parse_proc(src);
    Cursor rhs = p->find("y[_] = _").rhs();
    Cursor operand = Cursor(rhs.proc(),
                            CursorLoc{CursorKind::Node,
                                      [&] {
                                          Path q = rhs.loc().path;
                                          q.push_back(
                                              {PathLabel::OpLhs, -1});
                                          return q;
                                      }(),
                                      -1});
    ProcPtr p2 = bind_expr(p, operand, "xv", /*cse=*/true);
    // Both reads replaced: x appears only in the binding assignment.
    std::string printed = print_proc(p2);
    EXPECT_NE(printed.find("xv = x[i]"), std::string::npos);
    EXPECT_NE(printed.find("y[i] = xv * xv"), std::string::npos);
    expect_equiv(p, p2, {{"n", 5}});
}

TEST(StageMem, StagesWindowWithCopyInOut)
{
    const char* src = R"(
def r(n: size, A: f32[n, n] @ DRAM):
    assert n >= 8
    for i in seq(0, 4):
        for j in seq(0, 4):
            A[i, j] = A[i, j] * 2.0
)";
    ProcPtr p = parse_proc(src);
    std::vector<WindowDim> win;
    win.push_back(WindowDim{idx_const(0), idx_const(4)});
    win.push_back(WindowDim{idx_const(0), idx_const(4)});
    auto res = stage_mem(p, p->find_loop("i"), "A", win, "A_tile");
    ASSERT_TRUE(res.alloc.is_valid());
    ASSERT_TRUE(res.load.is_valid());
    ASSERT_TRUE(res.store.is_valid());
    EXPECT_EQ(res.alloc.stmt()->kind(), StmtKind::Alloc);
    expect_equiv(p, res.p, {{"n", 8}});
}

TEST(StageMem, PointDimsDropped)
{
    const char* src = R"(
def r(n: size, A: f32[n, n] @ DRAM, y: f32[n] @ DRAM):
    assert n >= 6
    for j in seq(0, 4):
        y[j] += A[2, j]
)";
    ProcPtr p = parse_proc(src);
    std::vector<WindowDim> win;
    win.push_back(WindowDim{idx_const(2), nullptr});  // point
    win.push_back(WindowDim{idx_const(0), idx_const(4)});
    auto res = stage_mem(p, p->find_loop("j"), "A", win, "row");
    EXPECT_EQ(res.alloc.stmt()->dims().size(), 1u);
    EXPECT_FALSE(res.store.is_valid());  // read-only staging
    expect_equiv(p, res.p, {{"n", 6}});
}

TEST(StageMem, RejectsEscape)
{
    const char* src = R"(
def r(n: size, A: f32[n, n] @ DRAM):
    assert n >= 8
    for i in seq(0, 5):
        A[i, 0] = 1.0
)";
    ProcPtr p = parse_proc(src);
    std::vector<WindowDim> win;
    win.push_back(WindowDim{idx_const(0), idx_const(4)});  // too small
    win.push_back(WindowDim{idx_const(0), idx_const(4)});
    EXPECT_THROW(stage_mem(p, p->find_loop("i"), "A", win, "T"),
                 SchedulingError);
}

}  // namespace
}  // namespace exo2
