/**
 * @file
 * Persistent-cache tests (DESIGN.md §8): the shared util helpers
 * (env parsing, atomic writes), the on-disk tuning and compile
 * caches — round-trips, corruption/truncation/version-skew recovery
 * with quarantine, concurrent multi-thread and multi-process
 * hammering, kill -9 crash recovery — and the cache-backed autotune
 * fast path producing bit-for-bit replayable winners.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache.h"
#include "src/ir/errors.h"
#include "src/kernels/blas.h"
#include "src/machine/machine.h"
#include "src/tune/tune.h"
#include "src/util/env.h"
#include "src/util/file_atomic.h"
#include "src/verify/sandbox.h"
#include "src/verify/verify.h"

namespace exo2 {
namespace {

std::string
fresh_dir(const char* tag)
{
    std::string tmpl = ::testing::TempDir() + "exo2_cache_" + tag +
                       "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* d = mkdtemp(buf.data());
    EXPECT_NE(d, nullptr);
    return d ? d : "";
}

std::string
read_all(const std::string& path)
{
    std::string out;
    EXPECT_TRUE(util::read_file_text(path, &out)) << path;
    return out;
}

int
count_dir_entries(const std::string& dir, const std::string& contains)
{
    int n = 0;
    std::string cmd = "ls -1 '" + dir + "' 2>/dev/null";
    FILE* p = popen(cmd.c_str(), "r");
    if (!p)
        return -1;
    char line[512];
    while (fgets(line, sizeof(line), p)) {
        if (contains.empty() || std::string(line).find(contains) !=
                                    std::string::npos)
            n++;
    }
    pclose(p);
    return n;
}

class CacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        unsetenv("EXO2_CACHE_DIR");
        unsetenv("EXO2_FAULTS");
        cache::reset_cache_stats();
        verify::clear_fault_spec();
        verify::reset_fault_injection_counts();
    }
    void TearDown() override
    {
        unsetenv("EXO2_CACHE_DIR");
        unsetenv("EXO2_FAULTS");
    }
};

// ---------------------------------------------------------------------------
// util/env: one audited parser for every EXO2_* knob
// ---------------------------------------------------------------------------

TEST_F(CacheTest, EnvIntParsesValidatesAndFallsBack)
{
    unsetenv("EXO2_TEST_KNOB");
    EXPECT_EQ(util::env_int("EXO2_TEST_KNOB", 7, 0, 100), 7);
    setenv("EXO2_TEST_KNOB", "", 1);
    EXPECT_EQ(util::env_int("EXO2_TEST_KNOB", 7, 0, 100), 7);
    setenv("EXO2_TEST_KNOB", "42", 1);
    EXPECT_EQ(util::env_int("EXO2_TEST_KNOB", 7, 0, 100), 42);

    // Trailing junk, non-numbers, and out-of-range values all throw
    // (the old atoi sites silently mapped "2O" -> 2).
    setenv("EXO2_TEST_KNOB", "2O", 1);
    EXPECT_THROW(util::env_int("EXO2_TEST_KNOB", 7, 0, 100),
                 ConfigError);
    setenv("EXO2_TEST_KNOB", "banana", 1);
    EXPECT_THROW(util::env_int("EXO2_TEST_KNOB", 7, 0, 100),
                 ConfigError);
    setenv("EXO2_TEST_KNOB", "101", 1);
    EXPECT_THROW(util::env_int("EXO2_TEST_KNOB", 7, 0, 100),
                 ConfigError);
    // The message names the variable, the value, and the range.
    try {
        util::env_int("EXO2_TEST_KNOB", 7, 0, 100);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("EXO2_TEST_KNOB"), std::string::npos) << msg;
        EXPECT_NE(msg.find("101"), std::string::npos) << msg;
        EXPECT_NE(msg.find("100"), std::string::npos) << msg;
    }
    unsetenv("EXO2_TEST_KNOB");
}

TEST_F(CacheTest, EnvDoubleAndFlag)
{
    setenv("EXO2_TEST_KNOB", "0.25", 1);
    EXPECT_DOUBLE_EQ(util::env_double("EXO2_TEST_KNOB", 1.0, 0, 10),
                     0.25);
    setenv("EXO2_TEST_KNOB", "1e99", 1);
    EXPECT_THROW(util::env_double("EXO2_TEST_KNOB", 1.0, 0, 10),
                 ConfigError);

    for (const char* v : {"1", "on", "true", "YES"}) {
        setenv("EXO2_TEST_KNOB", v, 1);
        EXPECT_TRUE(util::env_flag("EXO2_TEST_KNOB", false)) << v;
    }
    for (const char* v : {"0", "off", "False", "no"}) {
        setenv("EXO2_TEST_KNOB", v, 1);
        EXPECT_FALSE(util::env_flag("EXO2_TEST_KNOB", true)) << v;
    }
    setenv("EXO2_TEST_KNOB", "maybe", 1);
    EXPECT_THROW(util::env_flag("EXO2_TEST_KNOB", false), ConfigError);
    unsetenv("EXO2_TEST_KNOB");
}

// ---------------------------------------------------------------------------
// util/file_atomic: the one audited atomic-write path
// ---------------------------------------------------------------------------

TEST_F(CacheTest, WriteFileAtomicPublishesAndLeavesNoTemp)
{
    std::string dir = fresh_dir("atomic");
    std::string path = dir + "/out.txt";
    EXPECT_TRUE(util::write_file_atomic(path, "hello", true));
    EXPECT_EQ(read_all(path), "hello");
    // Overwrite is atomic too: readers see old or new, never a tear.
    EXPECT_TRUE(util::write_file_atomic(path, "world", false));
    EXPECT_EQ(read_all(path), "world");
    EXPECT_EQ(count_dir_entries(dir, ".tmp."), 0);
}

TEST_F(CacheTest, SweepReclaimsDeadWritersTempsOnly)
{
    std::string dir = fresh_dir("sweep");
    // A temp from a dead writer (pid 1 is init — never ours; use a
    // huge pid that cannot exist).
    std::ofstream(dir + "/e.tune.tmp.999999999.1") << "orphan";
    // A temp owned by *this* live process must survive.
    std::string mine =
        dir + "/e.tune.tmp." + std::to_string(getpid()) + ".7";
    std::ofstream(mine) << "mine";
    int swept = util::sweep_stale_tmp_files(dir);
    EXPECT_EQ(swept, 1);
    EXPECT_EQ(count_dir_entries(dir, ".tmp."), 1);
    std::string text;
    EXPECT_TRUE(util::read_file_text(mine, &text));
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST_F(CacheTest, Fnv1aIsStableAndHexRenders)
{
    // Known FNV-1a 64 vectors (offset basis / "a").
    EXPECT_EQ(cache::fnv1a64("", 0), 14695981039346656037ull);
    EXPECT_EQ(cache::fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(cache::hex64(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
    EXPECT_EQ(cache::hex64(0), "0000000000000000");

    cache::TuneKey k1{1, "AVX2", "avx2", "n=64"};
    cache::TuneKey k2 = k1;
    EXPECT_EQ(k1.hash(), k2.hash());
    k2.sizes = "n=65";
    EXPECT_NE(k1.hash(), k2.hash());
    k2 = k1;
    k2.isa = "scalar";
    EXPECT_NE(k1.hash(), k2.hash());
}

// ---------------------------------------------------------------------------
// TuneCache: round-trip, damage recovery, concurrency
// ---------------------------------------------------------------------------

cache::TuneKey
test_key(const char* sizes = "n=64")
{
    cache::TuneKey k;
    k.proc_digest = 0x1234abcd5678ef01ull;
    k.machine = "AVX2";
    k.isa = "avx2";
    k.sizes = sizes;
    return k;
}

TEST_F(CacheTest, TuneCacheRoundTrip)
{
    std::string dir = fresh_dir("tc");
    cache::TuneCache tc(dir);
    ASSERT_TRUE(tc.enabled());

    EXPECT_FALSE(tc.probe(test_key()).has_value());  // cold miss

    cache::TuneEntry e;
    e.script_text = "t_vectorize[0,1;AVX2,f32]\nt_interleave[0,4]\n";
    e.cost = 864.0;
    e.validated = true;
    ASSERT_TRUE(tc.store(test_key(), e));

    auto hit = tc.probe(test_key());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->script_text, e.script_text);
    EXPECT_DOUBLE_EQ(hit->cost, e.cost);
    EXPECT_TRUE(hit->validated);

    // Different sizes = different identity.
    EXPECT_FALSE(tc.probe(test_key("n=128")).has_value());

    cache::CacheStats s = cache::cache_stats();
    EXPECT_EQ(s.tune_hits, 1u);
    EXPECT_EQ(s.tune_stores, 1u);
    EXPECT_GE(s.tune_misses, 2u);
}

TEST_F(CacheTest, DisabledCacheIsInert)
{
    cache::TuneCache tc{std::string()};
    EXPECT_FALSE(tc.enabled());
    EXPECT_FALSE(tc.probe(test_key()).has_value());
    EXPECT_FALSE(tc.store(test_key(), cache::TuneEntry()));
}

/** Locate the single entry file of a one-entry tune cache. */
std::string
single_entry_path(const std::string& root)
{
    std::string dir = root + "/tune";
    std::string cmd = "ls -1 '" + dir + "' | grep '\\.tune$'";
    FILE* p = popen(cmd.c_str(), "r");
    char line[512] = {0};
    if (p) {
        if (!fgets(line, sizeof(line), p))
            line[0] = 0;
        pclose(p);
    }
    std::string name(line);
    while (!name.empty() && (name.back() == '\n' || name.back() == '\r'))
        name.pop_back();
    return dir + "/" + name;
}

TEST_F(CacheTest, CorruptEntryIsQuarantinedAndMissed)
{
    std::string dir = fresh_dir("corrupt");
    cache::TuneCache tc(dir);
    cache::TuneEntry e;
    e.script_text = "t_unroll[0]\n";
    e.validated = true;
    ASSERT_TRUE(tc.store(test_key(), e));

    // Flip a byte inside the checksummed payload. (Damage to the
    // header's key fields instead reads as a key mismatch — a plain
    // miss — which is also safe, just not this test.)
    std::string path = single_entry_path(dir);
    std::string text = read_all(path);
    text[text.size() - 2] ^= 0x5a;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << text;

    EXPECT_FALSE(tc.probe(test_key()).has_value());  // miss, not error
    EXPECT_EQ(cache::cache_stats().tune_corrupt, 1u);
    // The damaged entry is preserved for post-mortems, off the path.
    EXPECT_EQ(count_dir_entries(dir + "/tune/.bad", ""), 1);
    EXPECT_EQ(count_dir_entries(dir + "/tune", ".tune"), 0);

    // The cache heals: a fresh store serves hits again.
    ASSERT_TRUE(tc.store(test_key(), e));
    EXPECT_TRUE(tc.probe(test_key()).has_value());
}

TEST_F(CacheTest, TruncatedEntryIsQuarantinedAndMissed)
{
    std::string dir = fresh_dir("trunc");
    cache::TuneCache tc(dir);
    cache::TuneEntry e;
    e.script_text = "t_unroll[0]\nt_unroll[1]\n";
    ASSERT_TRUE(tc.store(test_key(), e));

    std::string path = single_entry_path(dir);
    std::string text = read_all(path);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << text.substr(0, text.size() - 5);

    EXPECT_FALSE(tc.probe(test_key()).has_value());
    EXPECT_EQ(cache::cache_stats().tune_corrupt, 1u);
}

TEST_F(CacheTest, VersionSkewIsStaleNotCorrupt)
{
    std::string dir = fresh_dir("stale");
    cache::TuneCache tc(dir);
    cache::TuneEntry e;
    e.script_text = "t_unroll[0]\n";
    ASSERT_TRUE(tc.store(test_key(), e));

    // Rewrite the header claiming an older schedule-library version:
    // exactly what a binary upgrade over an old cache dir sees.
    std::string path = single_entry_path(dir);
    std::string text = read_all(path);
    size_t at = text.find("lib=");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, text.find('\n', at) - at, "lib=0");
    std::ofstream(path, std::ios::binary | std::ios::trunc) << text;

    EXPECT_FALSE(tc.probe(test_key()).has_value());
    cache::CacheStats s = cache::cache_stats();
    EXPECT_EQ(s.tune_stale, 1u);
    EXPECT_EQ(s.tune_corrupt, 0u);
    EXPECT_EQ(count_dir_entries(dir + "/tune/.bad", "stale"), 1);
}

TEST_F(CacheTest, UnknownFutureFormatIsStaleByPrefix)
{
    std::string dir = fresh_dir("future");
    cache::TuneCache tc(dir);
    cache::TuneEntry e;
    e.script_text = "t_unroll[0]\n";
    ASSERT_TRUE(tc.store(test_key(), e));
    std::string path = single_entry_path(dir);
    std::string text = read_all(path);
    // Same family, different version line -> stale; raw garbage ->
    // corrupt.
    std::string old = "exo2-tune-cache v0" +
                      text.substr(text.find('\n'));
    std::ofstream(path, std::ios::binary | std::ios::trunc) << old;
    EXPECT_FALSE(tc.probe(test_key()).has_value());
    EXPECT_EQ(cache::cache_stats().tune_stale, 1u);
}

TEST_F(CacheTest, ConcurrentThreadsHammerOneCache)
{
    std::string dir = fresh_dir("threads");
    constexpr int kThreads = 8;
    constexpr int kIters = 40;
    std::vector<std::thread> ts;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; t++) {
        ts.emplace_back([&, t] {
            cache::TuneCache tc(dir);
            for (int i = 0; i < kIters; i++) {
                cache::TuneKey k =
                    test_key(("n=" + std::to_string(i % 5)).c_str());
                cache::TuneEntry e;
                e.script_text = "t_unroll[" + std::to_string(i % 5) +
                                "]\n";
                e.cost = i;
                if (!tc.store(k, e))
                    failures++;
                auto hit = tc.probe(k);
                // A concurrent writer may have replaced the entry,
                // but a probe must never see a torn/corrupt one.
                if (hit &&
                    hit->script_text.rfind("t_unroll[", 0) != 0)
                    failures++;
            }
        });
    }
    for (auto& th : ts)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    cache::CacheStats s = cache::cache_stats();
    EXPECT_EQ(s.tune_corrupt, 0u);
    EXPECT_EQ(s.tune_store_failures, 0u);
}

TEST_F(CacheTest, ConcurrentProcessesAndKill9SelfHeal)
{
    std::string dir = fresh_dir("procs");

    // Two hammering children, one of which is SIGKILLed mid-write
    // storm — the crash-only claim is that this can only orphan temp
    // files, never poison the cache.
    pid_t pids[2];
    for (int c = 0; c < 2; c++) {
        pids[c] = fork();
        ASSERT_GE(pids[c], 0);
        if (pids[c] == 0) {
            cache::TuneCache tc(dir);
            for (int i = 0;; i = (i + 1) % 1000) {
                cache::TuneKey k = test_key(
                    ("n=" + std::to_string(i % 7)).c_str());
                cache::TuneEntry e;
                e.script_text =
                    "t_unroll[" + std::to_string(i % 7) + "]\n";
                tc.store(k, e);
                tc.probe(k);
            }
            _exit(0);  // unreachable
        }
    }
    usleep(150 * 1000);  // let them fight over the lock for a while
    kill(pids[0], SIGKILL);
    kill(pids[1], SIGKILL);
    for (int c = 0; c < 2; c++) {
        int st = 0;
        waitpid(pids[c], &st, 0);
    }

    // Restart: construction sweeps orphans; every surviving entry
    // either parses clean or quarantines as a miss — no errors.
    cache::reset_cache_stats();
    cache::TuneCache tc(dir);
    for (int i = 0; i < 7; i++) {
        cache::TuneKey k =
            test_key(("n=" + std::to_string(i)).c_str());
        auto hit = tc.probe(k);
        if (hit)
            EXPECT_EQ(hit->script_text,
                      "t_unroll[" + std::to_string(i) + "]\n");
    }
    EXPECT_EQ(count_dir_entries(dir + "/tune", ".tmp."), 0);
    // And the cache still accepts new work.
    cache::TuneEntry e;
    e.script_text = "t_unroll[0]\n";
    EXPECT_TRUE(tc.store(test_key("n=99"), e));
    EXPECT_TRUE(tc.probe(test_key("n=99")).has_value());
}

// ---------------------------------------------------------------------------
// CompileCache
// ---------------------------------------------------------------------------

cache::CompileKey
ckey_for(const std::string& src)
{
    cache::CompileKey k;
    k.source_digest = cache::fnv1a64(src);
    k.isa_flags = "-O1 -fPIC -shared";
    k.compiler_id = "cc test 1.0";
    return k;
}

TEST_F(CacheTest, CompileCacheRoundTripAndCorruptionRecovery)
{
    std::string dir = fresh_dir("cc");
    cache::CompileCache cc(dir);
    ASSERT_TRUE(cc.enabled());

    // Any bytes work at this layer; dlopen-ability is the consumer's
    // concern (cjit quarantines load failures separately).
    std::string so = dir + "/fake.so";
    ASSERT_TRUE(util::write_file_atomic(so, "\x7f"
                                            "ELFfake-bytes"));
    cache::CompileKey k = ckey_for("int main;");
    EXPECT_FALSE(cc.probe(k).has_value());
    ASSERT_TRUE(cc.store(k, so));

    auto hit = cc.probe(k);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(read_all(*hit), "\x7f"
                              "ELFfake-bytes");

    // Damage the cached object: the checksum in the .meta sidecar
    // catches it before anyone dlopens.
    std::string text = read_all(*hit);
    text[4] ^= 0x10;
    std::ofstream(*hit, std::ios::binary | std::ios::trunc) << text;
    EXPECT_FALSE(cc.probe(k).has_value());
    EXPECT_EQ(cache::cache_stats().jit_corrupt, 1u);
    EXPECT_GE(count_dir_entries(dir + "/jit/.bad", ""), 1);

    // Store again: healed.
    ASSERT_TRUE(cc.store(k, so));
    EXPECT_TRUE(cc.probe(k).has_value());
}

// ---------------------------------------------------------------------------
// Fault-spec parser: new cache/service sites, unknown-key rejection
// ---------------------------------------------------------------------------

TEST_F(CacheTest, FaultSpecAcceptsCacheAndQueueSites)
{
    verify::FaultSpec s = verify::parse_fault_spec(
        "seed=7,cache_corrupt=0.5,cache_stale=0.25,queue_full=1");
    EXPECT_EQ(s.seed, 7u);
    EXPECT_DOUBLE_EQ(s.cache_corrupt, 0.5);
    EXPECT_DOUBLE_EQ(s.cache_stale, 0.25);
    EXPECT_DOUBLE_EQ(s.queue_full, 1.0);
    EXPECT_TRUE(s.any());
    // Round-trips through the canonical rendering.
    verify::FaultSpec s2 =
        verify::parse_fault_spec(verify::fault_spec_to_string(s));
    EXPECT_DOUBLE_EQ(s2.cache_corrupt, 0.5);
    EXPECT_DOUBLE_EQ(s2.queue_full, 1.0);
}

TEST_F(CacheTest, FaultSpecRejectsUnknownKeysLoudly)
{
    try {
        verify::parse_fault_spec("seed=1,cache_corupt=0.5");
        FAIL() << "expected VerifyError";
    } catch (const VerifyError& e) {
        std::string msg = e.what();
        // The error names the bad key and lists the accepted ones.
        EXPECT_NE(msg.find("cache_corupt"), std::string::npos) << msg;
        EXPECT_NE(msg.find("cache_corrupt"), std::string::npos) << msg;
    }
}

TEST_F(CacheTest, InjectedCorruptionIsDetectedOnNextProbe)
{
    std::string dir = fresh_dir("inject");
    verify::set_fault_spec(
        verify::parse_fault_spec("seed=3,cache_corrupt=1"));
    verify::reset_fault_injection_counts();

    cache::TuneCache tc(dir);
    cache::TuneEntry e;
    e.script_text = "t_unroll[0]\n";
    ASSERT_TRUE(tc.store(test_key(), e));  // store fires the injector

    EXPECT_GE(verify::fault_injection_counts().cache_corrupt, 1u);
    // The *published file* was genuinely damaged; probe must detect,
    // quarantine, and miss.
    verify::clear_fault_spec();
    EXPECT_FALSE(tc.probe(test_key()).has_value());
    EXPECT_EQ(cache::cache_stats().tune_corrupt, 1u);
}

TEST_F(CacheTest, InjectedStaleIsDetectedOnNextProbe)
{
    std::string dir = fresh_dir("injstale");
    verify::set_fault_spec(
        verify::parse_fault_spec("seed=3,cache_stale=1"));
    verify::reset_fault_injection_counts();

    cache::TuneCache tc(dir);
    cache::TuneEntry e;
    e.script_text = "t_unroll[0]\n";
    ASSERT_TRUE(tc.store(test_key(), e));

    EXPECT_GE(verify::fault_injection_counts().cache_stale, 1u);
    verify::clear_fault_spec();
    EXPECT_FALSE(tc.probe(test_key()).has_value());
    EXPECT_EQ(cache::cache_stats().tune_stale, 1u);
}

// ---------------------------------------------------------------------------
// Script-parser tolerance (round-trip reuse)
// ---------------------------------------------------------------------------

TEST_F(CacheTest, ScriptFromStringToleratesCommentsAndWhitespace)
{
    std::vector<verify::FuzzStep> steps = verify::script_from_string(
        "# a cached winner, annotated by hand\n"
        "t_unroll[0]\r\n"
        "   t_interleave[0,4]  \n"
        "\n"
        "  # trailing note\n");
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[0].op, "t_unroll");
    EXPECT_EQ(steps[1].op, "t_interleave");
}

// ---------------------------------------------------------------------------
// End-to-end: cache-backed autotune is fast and bit-for-bit replayable
// ---------------------------------------------------------------------------

TEST_F(CacheTest, AutotuneWarmHitReplaysBitForBit)
{
    std::string dir = fresh_dir("e2e");
    setenv("EXO2_CACHE_DIR", dir.c_str(), 1);

    const auto& k = kernels::find_kernel("saxpy");
    const Machine& m = machine_avx2();
    tune::TuneOpts o;
    o.tune_sizes = {{"n", 512}};
    o.beam_width = 2;
    o.max_rounds = 3;
    o.random_restarts = 0;
    o.jit_topk = 0;

    tune::TuneResult cold = tune::autotune(k.proc, m, o);
    EXPECT_FALSE(cold.from_cache);
    EXPECT_TRUE(cold.validated);

    tune::TuneResult warm = tune::autotune(k.proc, m, o);
    EXPECT_TRUE(warm.from_cache);
    EXPECT_TRUE(warm.validated);
    // Bit-for-bit: same script text, same resulting proc digest.
    EXPECT_EQ(verify::script_to_string(warm.script),
              verify::script_to_string(cold.script));
    EXPECT_EQ(proc_digest(warm.best), proc_digest(cold.best));
    EXPECT_EQ(proc_digest(tune::replay_script(k.proc, warm.script)),
              proc_digest(cold.best));

    // use_cache=false bypasses both probe and store.
    cache::CacheStats before = cache::cache_stats();
    tune::TuneOpts o2 = o;
    o2.use_cache = false;
    tune::TuneResult fresh = tune::autotune(k.proc, m, o2);
    EXPECT_FALSE(fresh.from_cache);
    cache::CacheStats after = cache::cache_stats();
    EXPECT_EQ(after.tune_hits, before.tune_hits);

    unsetenv("EXO2_CACHE_DIR");
}

TEST_F(CacheTest, AutotuneQuarantinesCachedScriptThatStoppedReplaying)
{
    std::string dir = fresh_dir("drift");
    setenv("EXO2_CACHE_DIR", dir.c_str(), 1);

    const auto& k = kernels::find_kernel("sdot");
    const Machine& m = machine_avx2();
    tune::TuneOpts o;
    o.tune_sizes = {{"n", 512}};
    o.beam_width = 2;
    o.max_rounds = 2;
    o.random_restarts = 0;
    o.jit_topk = 0;

    tune::TuneResult cold = tune::autotune(k.proc, m, o);
    ASSERT_TRUE(cold.validated);

    // Sabotage the stored entry with a script that parses but cannot
    // replay (checksum valid: this models semantic drift, the case
    // the checksum cannot catch). store() re-renders with a valid
    // checksum.
    cache::TuneCache tc(dir);
    cache::TuneKey key = tune::tune_cache_key(k.proc, m, o.tune_sizes);
    cache::TuneEntry bad;
    bad.script_text = "t_divide[99,0;zz,zz,0]\n";  // no such loop
    bad.validated = true;
    ASSERT_TRUE(tc.store(key, bad));

    // The poisoned entry must be rejected and quarantined, and the
    // search must still produce a validated winner.
    tune::TuneResult r = tune::autotune(k.proc, m, o);
    EXPECT_FALSE(r.from_cache);
    EXPECT_TRUE(r.validated);
    EXPECT_GE(count_dir_entries(dir + "/tune/.bad", "replay"), 1);

    unsetenv("EXO2_CACHE_DIR");
}

}  // namespace
}  // namespace exo2
