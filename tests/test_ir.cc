/**
 * @file
 * Unit tests for the object IR: construction, printing, parsing
 * round-trips, structural equality, and substitution.
 */

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace exo2 {
namespace {

const char* kGemv = R"(
def gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    assert M % 8 == 0
    assert N % 8 == 0
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]
)";

TEST(IrParse, GemvStructure)
{
    ProcPtr p = parse_proc(kGemv);
    EXPECT_EQ(p->name(), "gemv");
    ASSERT_EQ(p->args().size(), 5u);
    EXPECT_TRUE(p->args()[0].is_size);
    EXPECT_EQ(p->args()[2].name, "A");
    ASSERT_EQ(p->args()[2].dims.size(), 2u);
    EXPECT_EQ(p->preds().size(), 2u);
    ASSERT_EQ(p->body_stmts().size(), 1u);
    const StmtPtr& loop_i = p->body_stmts()[0];
    EXPECT_EQ(loop_i->kind(), StmtKind::For);
    EXPECT_EQ(loop_i->iter(), "i");
    ASSERT_EQ(loop_i->body().size(), 1u);
    const StmtPtr& loop_j = loop_i->body()[0];
    EXPECT_EQ(loop_j->iter(), "j");
    const StmtPtr& red = loop_j->body()[0];
    EXPECT_EQ(red->kind(), StmtKind::Reduce);
    EXPECT_EQ(red->name(), "y");
    EXPECT_EQ(red->rhs()->kind(), ExprKind::BinOp);
}

TEST(IrParse, RoundTrip)
{
    ProcPtr p = parse_proc(kGemv);
    std::string printed = print_proc(p);
    ProcPtr p2 = parse_proc(printed);
    EXPECT_EQ(printed, print_proc(p2));
    EXPECT_TRUE(block_equal(p->body_stmts(), p2->body_stmts()));
}

TEST(IrParse, AllocAndIf)
{
    const char* src = R"(
def foo(n: size, x: f32[n] @ DRAM):
    tmp: f32[8] @ AVX2
    for i in seq(0, n):
        if i < 8:
            tmp[i] = x[i]
        else:
            pass
)";
    ProcPtr p = parse_proc(src);
    const StmtPtr& alloc = p->body_stmts()[0];
    EXPECT_EQ(alloc->kind(), StmtKind::Alloc);
    EXPECT_EQ(alloc->mem()->name(), "AVX2");
    const StmtPtr& iff = p->body_stmts()[1]->body()[0];
    EXPECT_EQ(iff->kind(), StmtKind::If);
    EXPECT_EQ(iff->orelse().size(), 1u);
    // Round trip.
    ProcPtr p2 = parse_proc(print_proc(p));
    EXPECT_TRUE(block_equal(p->body_stmts(), p2->body_stmts()));
}

TEST(IrParse, WindowExprAndCall)
{
    const char* instr_src = R"(
def ld8(dst: [f32][8] @ AVX2, src: [f32][8] @ DRAM):
    for i in seq(0, 8):
        dst[i] = src[i]
)";
    ProcPtr ld8 = parse_proc(instr_src);
    const char* src = R"(
def foo(x: f32[64] @ DRAM):
    v: f32[8] @ AVX2
    for i in seq(0, 8):
        ld8(v[0:8], x[8 * i:8 * i + 8])
)";
    ProcPtr p = parse_proc(src, {ld8});
    const StmtPtr& call = p->body_stmts()[1]->body()[0];
    ASSERT_EQ(call->kind(), StmtKind::Call);
    EXPECT_EQ(call->callee()->name(), "ld8");
    ASSERT_EQ(call->args().size(), 2u);
    EXPECT_EQ(call->args()[0]->kind(), ExprKind::Window);
    EXPECT_EQ(call->args()[1]->kind(), ExprKind::Window);
}

TEST(IrExpr, SubstAndEquality)
{
    ExprPtr e = parse_expr_str("8 * io + ii + 1");
    ExprPtr e2 = expr_subst(e, "ii", idx_const(3));
    EXPECT_EQ(print_expr(e2), "8 * io + 3 + 1");
    EXPECT_TRUE(expr_equal(e, parse_expr_str("8 * io + ii + 1")));
    EXPECT_FALSE(expr_equal(e, parse_expr_str("8 * io + ii + 2")));
}

TEST(IrExpr, Uses)
{
    ExprPtr e = parse_expr_str("A[i, j] + x[j]");
    EXPECT_TRUE(expr_uses(e, "A"));
    EXPECT_TRUE(expr_uses(e, "j"));
    EXPECT_FALSE(expr_uses(e, "y"));
}

TEST(IrStmt, Equality)
{
    ProcPtr a = parse_proc(kGemv);
    ProcPtr b = parse_proc(kGemv);
    EXPECT_TRUE(block_equal(a->body_stmts(), b->body_stmts()));
    EXPECT_FALSE(procs_equivalent(a, b));  // distinct roots
    ProcPtr c = a->renamed("gemv2");
    EXPECT_TRUE(procs_equivalent(a, c));
}

TEST(IrProc, ConfigWrite)
{
    const char* src = R"(
def foo(n: size):
    cfg.stride = n
    cfg.stride = n + 1
)";
    ProcPtr p = parse_proc(src);
    EXPECT_EQ(p->body_stmts()[0]->kind(), StmtKind::WriteConfig);
    EXPECT_EQ(p->body_stmts()[0]->name(), "cfg");
    EXPECT_EQ(p->body_stmts()[0]->field(), "stride");
    ProcPtr p2 = parse_proc(print_proc(p));
    EXPECT_TRUE(block_equal(p->body_stmts(), p2->body_stmts()));
}

}  // namespace
}  // namespace exo2
